"""JSONL result store with resumable caching.

One campaign run appends one JSON record per scenario to a ``.jsonl``
file.  Records are keyed by the scenario's content hash, so reloading a
half-written store and rerunning the campaign executes only the missing
scenarios — crash recovery and incremental sweeps fall out for free.

Record schema (``"schema": 1``)::

    {
      "id":       "<12-hex scenario content hash>",
      "scenario": {family, scheduler, rsu, n_cores, scale, seed, params},
      "status":   "ok" | "error",
      "metrics":  {makespan, energy_j, edp, n_tasks},   # ok records only
      "stats":    {<StatSet counter dump>},             # ok records only
      "error":    {type, message} | null,
      "meta":     {schema, campaign, git_rev},
      "timing":   {wall_s, build_s, tdg_s, sim_s, tasks_per_sec, host,
                   pid, unix_ts}    # tasks_per_sec is n_tasks / sim_s;
                                    # tdg_s is the submit_all slice of sim_s
    }

Everything outside ``timing`` is a deterministic function of the
scenario (plus the code revision): two runs of the same matrix — whether
serial, 4-way parallel, or resumed — produce bitwise-identical records
once the ``timing`` block is dropped.  :func:`canonical_line` implements
exactly that projection and is what the determinism tests and
``repro.campaign compare`` operate on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "ResultStore",
    "MergeResult",
    "canonical_line",
    "merge_stores",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1

#: Record keys excluded from determinism comparisons: host-timing blocks
#: and the observability summary (``"obs"`` — phase spans and timers are
#: host-time measurements; present only on runs executed with
#: ``run_campaign(obs=True)`` / ``run --obs``).
NONDETERMINISTIC_KEYS = ("timing", "obs")


def canonical_line(record: dict) -> str:
    """Serialise a record deterministically, dropping host-timing fields."""
    trimmed = {k: v for k, v in record.items() if k not in NONDETERMINISTIC_KEYS}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Append-only JSONL store of campaign records, keyed by scenario id.

    The store tolerates a truncated trailing line (the signature of a
    crashed writer): the partial line is skipped on load, and the next
    append newline-terminates it so later records stay parseable.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._records: Dict[str, dict] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, dict]:
        """Read every valid record; silently drop corrupt/partial lines."""
        self._records = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # truncated tail of a crashed run
                    rec_id = record.get("id")
                    if rec_id:
                        self._records[rec_id] = record
        self._loaded = True
        return dict(self._records)

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    def __contains__(self, scenario_id: str) -> bool:
        self._ensure_loaded()
        return scenario_id in self._records

    def get(self, scenario_id: str) -> Optional[dict]:
        self._ensure_loaded()
        return self._records.get(scenario_id)

    def ids(self) -> List[str]:
        self._ensure_loaded()
        return list(self._records)

    def records(self) -> List[dict]:
        self._ensure_loaded()
        return list(self._records.values())

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Persist one record (single-writer: only the campaign parent)."""
        self.append_all([record])

    def append_all(self, records: Iterable[dict]) -> None:
        """Persist a batch of records in one file open (the merge path:
        per-record open/seek/close would pay one syscall round-trip per
        record for crash durability a one-shot batch does not need)."""
        records = list(records)
        if not records:
            return
        self._ensure_loaded()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "ab+") as fh:
            # A crashed writer can leave a partial line with no trailing
            # newline; terminate it first or the next record would be
            # concatenated onto the fragment and lost as unparseable.
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(
                b"".join(
                    (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
                    for record in records
                )
            )
        for record in records:
            self._records[record["id"]] = record

    # ------------------------------------------------------------------
    def canonical_lines(self) -> List[str]:
        """Deterministic projection of the store: sorted canonical records.

        Two stores produced by the same matrix at the same revision are
        equal under this projection regardless of worker count, completion
        order, or how many resume passes wrote them.
        """
        self._ensure_loaded()
        return sorted(canonical_line(r) for r in self._records.values())


@dataclass
class MergeResult:
    """What :func:`merge_stores` did."""

    n_inputs: int
    n_read: int = 0
    n_written: int = 0
    n_duplicates: int = 0
    n_errors_replaced: int = 0
    #: Scenario ids whose duplicate ok-records disagreed under the
    #: canonical projection — the signature of merging stores produced at
    #: different code revisions.
    conflicts: List[str] = field(default_factory=list)

    def describe(self) -> str:
        text = (
            f"merged {self.n_inputs} stores: {self.n_read} records read, "
            f"{self.n_written} written, {self.n_duplicates} duplicates "
            f"dropped, {self.n_errors_replaced} error records replaced"
        )
        if self.conflicts:
            text += (
                f"; WARNING: {len(self.conflicts)} conflicting ids "
                f"(first wins): {', '.join(sorted(self.conflicts)[:5])}"
                + ("..." if len(self.conflicts) > 5 else "")
            )
        return text


def merge_stores(inputs: Sequence[ResultStore], out: ResultStore) -> MergeResult:
    """Concatenate shard stores into ``out``, deduplicating by scenario id.

    The multi-host fan-out completion: every host runs
    ``repro.campaign run --shard i/n --store host_i.jsonl``, the shard
    stores are copied to one machine, and this merge produces the single
    store ``report``/``compare`` operate on.  Records are keyed by the
    scenario content hash, so shard layout does not matter and overlapping
    (re-)runs collapse.

    Dedup policy: the first occurrence of an id wins (inputs are processed
    in argument order), except that an ok record always replaces an
    earlier *error* record — a scenario that crashed on one host and
    succeeded on another must converge to the success.  Duplicate ok
    records whose canonical projections differ are reported as conflicts:
    content is a deterministic function of (scenario, code revision), so a
    mismatch means the shards ran different code.
    """
    result = MergeResult(n_inputs=len(inputs))
    merged: Dict[str, dict] = {}
    for store in inputs:
        for record in store.records():
            result.n_read += 1
            rec_id = record["id"]
            kept = merged.get(rec_id)
            if kept is None:
                merged[rec_id] = record
                continue
            result.n_duplicates += 1
            if kept["status"] == "error" and record["status"] == "ok":
                merged[rec_id] = record
                result.n_errors_replaced += 1
            elif (
                kept["status"] == "ok"
                and record["status"] == "ok"
                and rec_id not in result.conflicts
                and canonical_line(kept) != canonical_line(record)
            ):
                result.conflicts.append(rec_id)
    out.append_all(merged.values())
    result.n_written = len(merged)
    return result
