"""JSONL result store with resumable caching.

One campaign run appends one JSON record per scenario to a ``.jsonl``
file.  Records are keyed by the scenario's content hash, so reloading a
half-written store and rerunning the campaign executes only the missing
scenarios — crash recovery and incremental sweeps fall out for free.

Record schema (``"schema": 1``)::

    {
      "id":       "<12-hex scenario content hash>",
      "scenario": {family, scheduler, rsu, n_cores, scale, seed, params},
      "status":   "ok" | "error",
      "metrics":  {makespan, energy_j, edp, n_tasks},   # ok records only
      "stats":    {<StatSet counter dump>},             # ok records only
      "error":    {type, message} | null,
      "meta":     {schema, campaign, git_rev},
      "timing":   {wall_s, build_s, sim_s, tasks_per_sec, host, pid,
                   unix_ts}    # tasks_per_sec is n_tasks / sim_s
    }

Everything outside ``timing`` is a deterministic function of the
scenario (plus the code revision): two runs of the same matrix — whether
serial, 4-way parallel, or resumed — produce bitwise-identical records
once the ``timing`` block is dropped.  :func:`canonical_line` implements
exactly that projection and is what the determinism tests and
``repro.campaign compare`` operate on.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

__all__ = ["ResultStore", "canonical_line", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

#: Record keys excluded from determinism comparisons (host timing only).
NONDETERMINISTIC_KEYS = ("timing",)


def canonical_line(record: dict) -> str:
    """Serialise a record deterministically, dropping host-timing fields."""
    trimmed = {k: v for k, v in record.items() if k not in NONDETERMINISTIC_KEYS}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Append-only JSONL store of campaign records, keyed by scenario id.

    The store tolerates a truncated trailing line (the signature of a
    crashed writer): the partial line is skipped on load, and the next
    append newline-terminates it so later records stay parseable.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._records: Dict[str, dict] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, dict]:
        """Read every valid record; silently drop corrupt/partial lines."""
        self._records = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # truncated tail of a crashed run
                    rec_id = record.get("id")
                    if rec_id:
                        self._records[rec_id] = record
        self._loaded = True
        return dict(self._records)

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    def __contains__(self, scenario_id: str) -> bool:
        self._ensure_loaded()
        return scenario_id in self._records

    def get(self, scenario_id: str) -> Optional[dict]:
        self._ensure_loaded()
        return self._records.get(scenario_id)

    def ids(self) -> List[str]:
        self._ensure_loaded()
        return list(self._records)

    def records(self) -> List[dict]:
        self._ensure_loaded()
        return list(self._records.values())

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Persist one record (single-writer: only the campaign parent)."""
        self._ensure_loaded()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "ab+") as fh:
            # A crashed writer can leave a partial line with no trailing
            # newline; terminate it first or the new record would be
            # concatenated onto the fragment and lost as unparseable.
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write((json.dumps(record, sort_keys=True) + "\n").encode("utf-8"))
        self._records[record["id"]] = record

    def append_all(self, records: Iterable[dict]) -> None:
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    def canonical_lines(self) -> List[str]:
        """Deterministic projection of the store: sorted canonical records.

        Two stores produced by the same matrix at the same revision are
        equal under this projection regardless of worker count, completion
        order, or how many resume passes wrote them.
        """
        self._ensure_loaded()
        return sorted(canonical_line(r) for r in self._records.values())
