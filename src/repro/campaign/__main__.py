"""Entry point for ``python -m repro.campaign``."""

import sys

from .cli import main

sys.exit(main())
