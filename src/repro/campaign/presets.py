"""Named scenario matrices — one preset per paper figure or sweep.

Presets are factories so that a campaign never shares mutable state with
another; ``build_preset(name)`` returns a fresh :class:`~.matrix.Matrix`.
``python -m repro.campaign list-presets`` prints this registry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from .matrix import Matrix, Scenario

__all__ = ["PRESETS", "build_preset", "preset_names"]

#: All seven scheduler policies, in a fixed comparison order.
ALL_SCHEDULERS: Tuple[str, ...] = (
    "fifo",
    "lifo",
    "breadth_first",
    "bottom_level",
    "work_stealing",
    "cats",
    "static",
)

#: The five synthetic DAG families of repro.apps.dag_workloads.
DAG_FAMILIES: Tuple[str, ...] = (
    "layered",
    "cholesky",
    "lu",
    "fork_join",
    "pipeline",
)


def _smoke() -> Matrix:
    """Tiny CI matrix: every scheduler × three DAG families, scale 1."""
    return Matrix.product(
        "smoke",
        families=("layered", "cholesky", "fork_join"),
        schedulers=ALL_SCHEDULERS,
        core_counts=(8,),
        scales=(1,),
        seeds=(1,),
    )


def _scheduler_matrix() -> Matrix:
    """The full comparison the ROADMAP asks for: seven schedulers meet
    five DAG families, at two graph scales, on a 16-core machine."""
    return Matrix.product(
        "scheduler_matrix",
        families=DAG_FAMILIES,
        schedulers=ALL_SCHEDULERS,
        core_counts=(16,),
        scales=(1, 2),
        seeds=(1,),
    )


#: Skewed, costlier per-family parameterisations for the RSU comparison:
#: heavier tasks (``wl_cost_mult``), lower memory ratios (DVFS-sensitive)
#: and harsher imbalance (``wl_jitter`` / ``wl_stage_skew``), so that
#: scheduler choice and RSU boosting actually separate the makespans —
#: at the stock smoke-scale settings most schedulers tie.
RSU_COMPARISON_KNOBS: Dict[str, Dict[str, float]] = {
    "layered": {"wl_cost_mult": 4.0, "wl_jitter": 1.2, "wl_mem_ratio": 0.05},
    "cholesky": {"wl_cost_mult": 8.0, "wl_mem_ratio": 0.1},
    "lu": {"wl_cost_mult": 8.0, "wl_mem_ratio": 0.1},
    "fork_join": {"wl_cost_mult": 4.0, "wl_jitter": 1.5, "wl_mem_ratio": 0.05},
    "pipeline": {"wl_cost_mult": 4.0, "wl_stage_skew": 2.0, "wl_mem_ratio": 0.05},
}


def _rsu_comparison() -> Matrix:
    """RSU criticality boosting meets scheduling policy, jointly: every
    scheduler × static frequency vs oracle-marked vs online-heuristic
    criticality, on skewed/costlier DAG-family parameterisations whose
    per-scenario makespans genuinely diverge (ROADMAP open item 2).

    8 cores at graph scale 2 keeps the machine narrower than the ready
    sets, so queue order matters: 14 of the 15 family × RSU rows show
    several distinct makespans across the seven schedulers (the one tie,
    ``pipeline`` at static frequency, is structural — its parallelism
    never exceeds its 4 stages, so any work-conserving order is optimal).
    """
    scenarios: List[Scenario] = []
    for family in DAG_FAMILIES:
        params = tuple(sorted(RSU_COMPARISON_KNOBS[family].items()))
        for scheduler in ALL_SCHEDULERS:
            for rsu in ("off", "oracle", "heuristic"):
                scenarios.append(
                    Scenario(
                        family,
                        scheduler=scheduler,
                        rsu=rsu,
                        n_cores=8,
                        scale=2,
                        seed=1,
                        params=params,
                    )
                )
    return Matrix("rsu_comparison", tuple(scenarios))


def _fig2_rsu() -> Matrix:
    """Section 3.1 headline: static scheduling vs criticality-aware DVFS
    on the chain+fillers workload, 32 cores."""
    return Matrix(
        "fig2_rsu",
        (
            Scenario("chain", scheduler="fifo", rsu="off", n_cores=32),
            Scenario("chain", scheduler="cats", rsu="annotated", n_cores=32),
        ),
    )


def _fig2_overhead(
    core_counts: Sequence[int] = (4, 8, 16, 32, 64)
) -> Matrix:
    """Figure 2 motivation: software-DVFS vs RSU reconfiguration stalls
    as the core count grows (12 fillers per core, short tasks)."""
    params = (
        ("chain_len", 4),
        ("fillers_per_core", 12),
        ("filler_cycles", 2e8),
    )
    scenarios: List[Scenario] = []
    for mode in ("annotated-software", "annotated"):
        for n in core_counts:
            scenarios.append(
                Scenario(
                    "chain",
                    scheduler="cats",
                    rsu=mode,
                    n_cores=n,
                    params=params,
                )
            )
    return Matrix("fig2_overhead", tuple(scenarios))


def _fig5_parsec() -> Matrix:
    """Figure 5: OmpSs vs Pthreads scalability for bodytrack/facesim."""
    scenarios: List[Scenario] = []
    for app in ("bodytrack", "facesim"):
        for variant in ("pthreads", "ompss"):
            for n in (1, 2, 4, 8, 12, 16):
                scenarios.append(
                    Scenario(
                        f"parsec:{app}:{variant}",
                        scheduler="work_stealing",
                        n_cores=n,
                    )
                )
    return Matrix("fig5_parsec", tuple(scenarios))


#: NAS benchmarks of the Figure 1 hybrid-memory experiment.
NAS_BENCHES: Tuple[str, ...] = ("CG", "EP", "FT", "IS", "MG", "SP")


def _fig1_hybrid(
    n_cores: int = 64, accesses_per_core: int = 1200
) -> Matrix:
    """Figure 1: the six NAS access-mix models on a cache-only vs hybrid
    SPM+cache hierarchy — the first out-of-engine figure behind the
    campaign store (``bench_fig1_hybrid_memory`` derives its speedup bars
    from these records)."""
    scenarios: List[Scenario] = []
    for bench in NAS_BENCHES:
        for mode in ("cache", "hybrid"):
            scenarios.append(
                Scenario(
                    f"nas:{bench}",
                    scheduler="fifo",  # unused: no task runtime involved
                    n_cores=n_cores,
                    seed=0,
                    params=(
                        ("mode", mode),
                        ("accesses_per_core", accesses_per_core),
                    ),
                )
            )
    return Matrix("fig1_hybrid", tuple(scenarios))


def _throughput(scales: Sequence[int] = (1, 2, 4)) -> Matrix:
    """Kernel-throughput trajectory: tasks/s per family vs graph scale
    (the ROADMAP's --scale axis; host timing lives in the records'
    ``timing`` block)."""
    return Matrix.product(
        "throughput",
        families=DAG_FAMILIES,
        schedulers=("fifo",),
        core_counts=(16,),
        scales=tuple(scales),
        seeds=(1,),
    )


#: name -> (description, factory)
PRESETS: Dict[str, Tuple[str, Callable[[], Matrix]]] = {
    "smoke": (
        "CI smoke: 7 schedulers x 3 DAG families, 8 cores, scale 1",
        _smoke,
    ),
    "scheduler_matrix": (
        "7 schedulers x 5 DAG families x scales (1,2), 16 cores",
        _scheduler_matrix,
    ),
    "rsu_comparison": (
        "7 schedulers x RSU off/oracle/heuristic x 5 skewed DAG families",
        _rsu_comparison,
    ),
    "fig1_hybrid": (
        "Fig 1: NAS benchmarks, cache-only vs hybrid SPM memory, 64 cores",
        _fig1_hybrid,
    ),
    "fig2_rsu": (
        "Sec 3.1: static vs criticality-aware DVFS, 32 cores",
        _fig2_rsu,
    ),
    "fig2_overhead": (
        "Fig 2 motivation: software vs RSU DVFS stalls, 4..64 cores",
        _fig2_overhead,
    ),
    "fig5_parsec": (
        "Fig 5: PARSEC pthreads vs OmpSs speedup, 1..16 threads",
        _fig5_parsec,
    ),
    "throughput": (
        "tasks/s per DAG family vs scale (1,2,4), FIFO, 16 cores",
        _throughput,
    ),
}


def preset_names() -> List[str]:
    return list(PRESETS)


def build_preset(name: str, **kwargs: Any) -> Matrix:
    """Instantiate a preset matrix by name (kwargs go to the factory)."""
    try:
        _, factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {preset_names()}"
        ) from None
    return factory(**kwargs)
