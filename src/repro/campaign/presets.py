"""Named scenario matrices — one preset per paper figure or sweep.

Presets are factories so that a campaign never shares mutable state with
another; ``build_preset(name)`` returns a fresh :class:`~.matrix.Matrix`.
``python -m repro.campaign list-presets`` prints this registry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .matrix import Matrix, Scenario

__all__ = ["PRESETS", "build_preset", "preset_names"]

#: All seven scheduler policies, in a fixed comparison order.
ALL_SCHEDULERS: Tuple[str, ...] = (
    "fifo",
    "lifo",
    "breadth_first",
    "bottom_level",
    "work_stealing",
    "cats",
    "static",
)

#: The five synthetic DAG families of repro.apps.dag_workloads.
DAG_FAMILIES: Tuple[str, ...] = (
    "layered",
    "cholesky",
    "lu",
    "fork_join",
    "pipeline",
)


def _smoke() -> Matrix:
    """Tiny CI matrix: every scheduler × three DAG families, scale 1."""
    return Matrix.product(
        "smoke",
        families=("layered", "cholesky", "fork_join"),
        schedulers=ALL_SCHEDULERS,
        core_counts=(8,),
        scales=(1,),
        seeds=(1,),
    )


def _scheduler_matrix() -> Matrix:
    """The full comparison the ROADMAP asks for: seven schedulers meet
    five DAG families, at two graph scales, on a 16-core machine."""
    return Matrix.product(
        "scheduler_matrix",
        families=DAG_FAMILIES,
        schedulers=ALL_SCHEDULERS,
        core_counts=(16,),
        scales=(1, 2),
        seeds=(1,),
    )


#: Skewed, costlier per-family parameterisations for the RSU comparison:
#: heavier tasks (``wl_cost_mult``), lower memory ratios (DVFS-sensitive)
#: and harsher imbalance (``wl_jitter`` / ``wl_stage_skew``), so that
#: scheduler choice and RSU boosting actually separate the makespans —
#: at the stock smoke-scale settings most schedulers tie.
RSU_COMPARISON_KNOBS: Dict[str, Dict[str, float]] = {
    "layered": {"wl_cost_mult": 4.0, "wl_jitter": 1.2, "wl_mem_ratio": 0.05},
    "cholesky": {"wl_cost_mult": 8.0, "wl_mem_ratio": 0.1},
    "lu": {"wl_cost_mult": 8.0, "wl_mem_ratio": 0.1},
    "fork_join": {"wl_cost_mult": 4.0, "wl_jitter": 1.5, "wl_mem_ratio": 0.05},
    "pipeline": {"wl_cost_mult": 4.0, "wl_stage_skew": 2.0, "wl_mem_ratio": 0.05},
}


def _rsu_comparison() -> Matrix:
    """RSU criticality boosting meets scheduling policy, jointly: every
    scheduler × static frequency vs oracle-marked vs online-heuristic
    criticality, on skewed/costlier DAG-family parameterisations whose
    per-scenario makespans genuinely diverge (ROADMAP open item 2).

    8 cores at graph scale 2 keeps the machine narrower than the ready
    sets, so queue order matters: 14 of the 15 family × RSU rows show
    several distinct makespans across the seven schedulers (the one tie,
    ``pipeline`` at static frequency, is structural — its parallelism
    never exceeds its 4 stages, so any work-conserving order is optimal).
    """
    scenarios: List[Scenario] = []
    for family in DAG_FAMILIES:
        params = tuple(sorted(RSU_COMPARISON_KNOBS[family].items()))
        for scheduler in ALL_SCHEDULERS:
            for rsu in ("off", "oracle", "heuristic"):
                scenarios.append(
                    Scenario(
                        family,
                        scheduler=scheduler,
                        rsu=rsu,
                        n_cores=8,
                        scale=2,
                        seed=1,
                        params=params,
                    )
                )
    return Matrix("rsu_comparison", tuple(scenarios))


def _fig2_rsu() -> Matrix:
    """Section 3.1 headline: static scheduling vs criticality-aware DVFS
    on the chain+fillers workload, 32 cores."""
    return Matrix(
        "fig2_rsu",
        (
            Scenario("chain", scheduler="fifo", rsu="off", n_cores=32),
            Scenario("chain", scheduler="cats", rsu="annotated", n_cores=32),
        ),
    )


def _fig2_overhead(
    core_counts: Sequence[int] = (4, 8, 16, 32, 64)
) -> Matrix:
    """Figure 2 motivation: software-DVFS vs RSU reconfiguration stalls
    as the core count grows (12 fillers per core, short tasks)."""
    params = (
        ("chain_len", 4),
        ("fillers_per_core", 12),
        ("filler_cycles", 2e8),
    )
    scenarios: List[Scenario] = []
    for mode in ("annotated-software", "annotated"):
        for n in core_counts:
            scenarios.append(
                Scenario(
                    "chain",
                    scheduler="cats",
                    rsu=mode,
                    n_cores=n,
                    params=params,
                )
            )
    return Matrix("fig2_overhead", tuple(scenarios))


def _fig5_parsec() -> Matrix:
    """Figure 5: OmpSs vs Pthreads scalability for bodytrack/facesim."""
    scenarios: List[Scenario] = []
    for app in ("bodytrack", "facesim"):
        for variant in ("pthreads", "ompss"):
            for n in (1, 2, 4, 8, 12, 16):
                scenarios.append(
                    Scenario(
                        f"parsec:{app}:{variant}",
                        scheduler="work_stealing",
                        n_cores=n,
                    )
                )
    return Matrix("fig5_parsec", tuple(scenarios))


#: NAS benchmarks of the Figure 1 hybrid-memory experiment.
NAS_BENCHES: Tuple[str, ...] = ("CG", "EP", "FT", "IS", "MG", "SP")


def _fig1_hybrid(
    n_cores: int = 64, accesses_per_core: int = 1200
) -> Matrix:
    """Figure 1: the six NAS access-mix models on a cache-only vs hybrid
    SPM+cache hierarchy — the first out-of-engine figure behind the
    campaign store (``bench_fig1_hybrid_memory`` derives its speedup bars
    from these records)."""
    scenarios: List[Scenario] = []
    for bench in NAS_BENCHES:
        for mode in ("cache", "hybrid"):
            scenarios.append(
                Scenario(
                    f"nas:{bench}",
                    scheduler="fifo",  # unused: no task runtime involved
                    n_cores=n_cores,
                    seed=0,
                    params=(
                        ("mode", mode),
                        ("accesses_per_core", accesses_per_core),
                    ),
                )
            )
    return Matrix("fig1_hybrid", tuple(scenarios))


#: Fig-4 recovery mechanisms, in the figure's legend order.  ``ideal``
#: runs fault-free, so fault-axis knobs are stripped from its scenarios
#: (one reference row per (grid, seed) instead of one per fault combo).
FIG4_SCHEME_AXIS: Tuple[str, ...] = (
    "ideal",
    "checkpoint",
    "lossy_restart",
    "feir",
    "afeir",
)

#: Fault-axis keys that an ideal (fault-free) scenario must not carry.
_FIG4_FAULT_KEYS = frozenset(
    (
        "fault_time",
        "fault_window",
        "fault_rate",
        "fault_distribution",
        "fault_seed",
        "n_faults",
        "block_start",
        "block_len",
        "ckpt_interval",
    )
)


def _fig4_scenarios(
    schemes: Sequence[str],
    seeds: Sequence[int],
    fault_axis: Sequence[Dict[str, Any]],
    n_cores: int = 2,
    **base: Any,
) -> List[Scenario]:
    """Cross schemes × seeds × fault combos into ``fig4:<scheme>`` rows.

    ``base`` params (grid, tol, ...) apply to every scenario; each
    ``fault_axis`` entry is one fault configuration (n_faults,
    fault_time, ckpt_interval, ...).  Ideal rows drop the fault keys —
    their records are the per-(grid, seed) reference curves, and the
    content-hash dedup in :class:`~.matrix.Matrix` collapses what would
    otherwise be one identical ideal run per fault combo.
    """
    scenarios: List[Scenario] = []
    for seed in seeds:
        for combo in fault_axis:
            for scheme in schemes:
                params = dict(base)
                params.update(combo)
                if scheme == "ideal":
                    params = {
                        k: v
                        for k, v in params.items()
                        if k not in _FIG4_FAULT_KEYS
                    }
                elif scheme != "checkpoint":
                    # The interval axis only exists for the checkpoint
                    # scheme; leaving it on the others would mint
                    # distinct ids for identical simulations.
                    params.pop("ckpt_interval", None)
                scenarios.append(
                    Scenario(
                        f"fig4:{scheme}",
                        scheduler="fifo",  # unused: no task runtime involved
                        n_cores=n_cores,  # AFEIR recovery-overlap cores
                        seed=seed,
                        params=tuple(sorted(params.items())),
                    )
                )
    return scenarios


def _fig4_resilience() -> Matrix:
    """Figure 4 behind the store: scheme × checkpoint interval × fault
    count × fault time × matrix size × seed.  The single-fault rows at
    ``fault_window=0`` reproduce the paper's hand-placed DUE exactly;
    the multi-fault rows draw seeded plans over a 15 s window."""
    scenarios: List[Scenario] = []
    for grid, block_len, fault_times in (
        (32, 64, (5.0, 12.0)),
        (48, 128, (10.0, 25.0)),
    ):
        fault_axis: List[Dict[str, Any]] = []
        for fault_time in fault_times:
            for n_faults, window in ((1, 0.0), (3, 15.0)):
                for interval in (120, 250):
                    fault_axis.append(
                        {
                            "fault_time": fault_time,
                            "n_faults": n_faults,
                            "fault_window": window,
                            "ckpt_interval": interval,
                            "block_len": block_len,
                            "block_start": grid * grid // 2,
                        }
                    )
        scenarios.extend(
            _fig4_scenarios(
                FIG4_SCHEME_AXIS, seeds=(0,), fault_axis=fault_axis,
                grid=grid,
            )
        )
    return Matrix("fig4_resilience", tuple(scenarios))


def _resilience_sweep() -> Matrix:
    """Wide fault-injection sweep: fault count *and* Poisson fault rate
    × time distribution × seeds, all four protected schemes + the ideal
    reference per (grid, seed)."""
    fault_axis: List[Dict[str, Any]] = []
    for n_faults in (1, 2, 4):
        for distribution in ("uniform", "spaced"):
            fault_axis.append(
                {
                    "fault_time": 6.0,
                    "fault_window": 24.0,
                    "n_faults": n_faults,
                    "fault_distribution": distribution,
                    "ckpt_interval": 120,
                    "block_len": 64,
                }
            )
    for rate in (0.05, 0.15):
        fault_axis.append(
            {
                "fault_time": 6.0,
                "fault_window": 24.0,
                "fault_rate": rate,
                "ckpt_interval": 120,
                "block_len": 64,
            }
        )
    return Matrix(
        "resilience_sweep",
        tuple(
            _fig4_scenarios(
                FIG4_SCHEME_AXIS,
                seeds=(0, 1, 2),
                fault_axis=fault_axis,
                grid=32,
            )
        ),
    )


def _fig4_smoke() -> Matrix:
    """Tiny CI matrix: all five mechanisms through a 2-DUE plan on a
    24x24 proxy — fast enough for every commit, wide enough that a
    recovery regression (NaN leak, broken rollback) turns a record red."""
    fault_axis = (
        {
            "fault_time": 3.0,
            "fault_window": 6.0,
            "n_faults": 2,
            "ckpt_interval": 60,
            "block_len": 48,
        },
    )
    return Matrix(
        "fig4_smoke",
        tuple(
            _fig4_scenarios(
                FIG4_SCHEME_AXIS, seeds=(0,), fault_axis=fault_axis, grid=24,
            )
        ),
    )


#: Runtime recovery policies, in fixed comparison order.
RUNTIME_RECOVERY_AXIS: Tuple[str, ...] = (
    "reexec",
    "reexec-elsewhere",
    "task-checkpoint",
)

#: Fault configurations of the runtime sweep.  The window (seconds of
#: *simulated* time from t=0) is calibrated to the scale-1 makespans of
#: the base families (~0.003–0.023 s at 8 cores), so count rows land
#: their faults inside most runs; rate rows draw a Poisson process at
#: ~4 expected arrivals over the window.  The empty row is the
#: zero-fault control — bit-identical to the fault-free base family.
_RUNTIME_FAULT_AXIS: Tuple[Dict[str, Any], ...] = (
    {},
    {"fault_count": 3, "fault_window": 0.01},
    {"fault_rate": 400.0, "fault_window": 0.01},
    {"fault_count": 1, "fault_window": 0.01, "core_kill_p": 1.0},
)


def _runtime_faults_sweep() -> Matrix:
    """The runtime-fault axis behind the store: recovery policy × all
    seven schedulers × three DAG families × fault configuration (zero /
    task-kill count / Poisson rate / core-kill), 8 cores at scale 1.

    Every record is bit-identical across worker counts, shards and
    resume like any other family; rows where a kill strands work a
    scheduler cannot re-route (e.g. core-kill under ``static``) produce
    *deterministic* error records rather than silent hangs.
    """
    scenarios: List[Scenario] = []
    for policy in RUNTIME_RECOVERY_AXIS:
        for family in ("layered", "cholesky", "fork_join"):
            for scheduler in ALL_SCHEDULERS:
                for combo in _RUNTIME_FAULT_AXIS:
                    params = dict(combo)
                    params["base_family"] = family
                    scenarios.append(
                        Scenario(
                            f"faulty:{policy}",
                            scheduler=scheduler,
                            n_cores=8,
                            scale=1,
                            seed=1,
                            params=tuple(sorted(params.items())),
                        )
                    )
    return Matrix("runtime_faults_sweep", tuple(scenarios))


def _throughput(
    scales: Sequence[int] = (1, 2, 4), backend: Optional[str] = None
) -> Matrix:
    """Kernel-throughput trajectory: tasks/s per family vs graph scale
    (the ROADMAP's --scale axis; host timing lives in the records'
    ``timing`` block).  ``backend`` pins the dependence-tracker backend
    (``python``/``numpy``) for A/B rows; ``None`` keeps the runtime
    default."""
    return Matrix.product(
        "throughput",
        families=DAG_FAMILIES,
        schedulers=("fifo",),
        core_counts=(16,),
        scales=tuple(scales),
        seeds=(1,),
        params={"dep_backend": backend} if backend is not None else None,
    )


#: name -> (description, factory)
PRESETS: Dict[str, Tuple[str, Callable[[], Matrix]]] = {
    "smoke": (
        "CI smoke: 7 schedulers x 3 DAG families, 8 cores, scale 1",
        _smoke,
    ),
    "scheduler_matrix": (
        "7 schedulers x 5 DAG families x scales (1,2), 16 cores",
        _scheduler_matrix,
    ),
    "rsu_comparison": (
        "7 schedulers x RSU off/oracle/heuristic x 5 skewed DAG families",
        _rsu_comparison,
    ),
    "fig1_hybrid": (
        "Fig 1: NAS benchmarks, cache-only vs hybrid SPM memory, 64 cores",
        _fig1_hybrid,
    ),
    "fig2_rsu": (
        "Sec 3.1: static vs criticality-aware DVFS, 32 cores",
        _fig2_rsu,
    ),
    "fig2_overhead": (
        "Fig 2 motivation: software vs RSU DVFS stalls, 4..64 cores",
        _fig2_overhead,
    ),
    "fig4_resilience": (
        "Fig 4: CG recovery schemes x ckpt interval x fault axis x grid",
        _fig4_resilience,
    ),
    "fig4_smoke": (
        "CI smoke: 5 recovery mechanisms, 2-DUE plan, 24x24 proxy",
        _fig4_smoke,
    ),
    "resilience_sweep": (
        "wide fault axis: count/rate x distribution x 4 schemes x 3 seeds",
        _resilience_sweep,
    ),
    "runtime_faults_sweep": (
        "runtime faults: 3 recovery policies x 7 schedulers x 3 DAG "
        "families x fault axis (zero/count/rate/core-kill)",
        _runtime_faults_sweep,
    ),
    "fig5_parsec": (
        "Fig 5: PARSEC pthreads vs OmpSs speedup, 1..16 threads",
        _fig5_parsec,
    ),
    "throughput": (
        "tasks/s per DAG family vs scale (1,2,4), FIFO, 16 cores",
        _throughput,
    ),
}


def preset_names() -> List[str]:
    return list(PRESETS)


def build_preset(name: str, **kwargs: Any) -> Matrix:
    """Instantiate a preset matrix by name (kwargs go to the factory)."""
    try:
        _, factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {preset_names()}"
        ) from None
    return factory(**kwargs)
