"""Aggregation and regression gating over result stores.

Two consumers:

* ``repro.campaign report`` — pivot the ok-records of one store into a
  per-axis summary table (CSV or markdown), e.g. makespan by
  family × scheduler.  Multiple records landing in one cell (several
  scales/seeds) are reduced by mean or geometric mean.
* ``repro.campaign compare`` — diff two stores scenario-by-scenario and
  flag metric regressions beyond a relative tolerance: the gate a CI job
  or a perf PR runs against a stored baseline.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.stats import StatSet, geometric_mean
from .store import ResultStore

__all__ = [
    "summarize",
    "summarize_obs",
    "render_table",
    "aggregate_stats",
    "compare_stores",
    "CompareResult",
    "Regression",
]

#: Deterministic metrics; for each, "bigger is worse" drives regression
#: direction (n_tasks is gated exactly: any change is a mismatch).
DEFAULT_METRICS = ("makespan", "energy_j", "edp")


def _axis_value(record: dict, axis: str) -> Any:
    if axis in record["scenario"]:
        return record["scenario"][axis]
    return record["scenario"].get("params", {}).get(axis)


def summarize(
    records: Sequence[dict],
    rows: str = "family",
    cols: str = "scheduler",
    metric: str = "makespan",
    reduce: str = "mean",
) -> Tuple[List[str], List[List[str]]]:
    """Pivot ok-records into a table: one row per ``rows`` axis value,
    one column per ``cols`` axis value, cells reduced over duplicates.

    Returns ``(headers, body)`` ready for :func:`render_table`.
    """
    cells: Dict[Tuple, List[float]] = {}
    row_vals: List = []
    col_vals: List = []
    # Axis-sorted iteration: pivot layout must not depend on the store's
    # append order (parallel runs complete in nondeterministic order).
    records = sorted(
        records,
        key=lambda r: (
            r["scenario"]["family"],
            r["scenario"]["scheduler"],
            r["scenario"]["rsu"],
            r["scenario"]["n_cores"],
            r["scenario"]["scale"],
            r["scenario"]["seed"],
        ),
    )
    for rec in records:
        if rec["status"] != "ok":
            continue
        value = rec["metrics"].get(metric)
        if value is None:
            value = rec.get("timing", {}).get(metric)
        if value is None:
            continue
        r, c = _axis_value(rec, rows), _axis_value(rec, cols)
        if r not in row_vals:
            row_vals.append(r)
        if c not in col_vals:
            col_vals.append(c)
        cells.setdefault((r, c), []).append(float(value))

    def _reduce(values: List[float]) -> float:
        if reduce == "geomean":
            return geometric_mean(values)
        if reduce == "sum":
            return sum(values)
        return sum(values) / len(values)

    headers = [rows] + [str(c) for c in col_vals]
    body: List[List[str]] = []
    for r in row_vals:
        line = [str(r)]
        for c in col_vals:
            values = cells.get((r, c))
            line.append(f"{_reduce(values):.6g}" if values else "-")
        body.append(line)
    return headers, body


def summarize_obs(
    records: Sequence[dict], cols: str = "scheduler"
) -> Tuple[List[str], List[List[str]]]:
    """Pivot the observability blocks of ok-records into a table: one row
    per obs metric (namespaced ``counter:`` / ``timer:`` / ``span:`` /
    ``gauge:``), one column per ``cols`` axis value.

    Counters, timer totals and span totals are *summed* over the records
    landing in a cell; gauges report the cell's *max* (peaks are what a
    capacity question asks).  Raises ``ValueError`` when the store holds
    no ``"obs"`` blocks — i.e. the campaign ran without ``--obs``.

    Returns ``(headers, body)`` ready for :func:`render_table`.
    """
    cells: Dict[Tuple[str, Any], List[float]] = {}
    row_names: List[str] = []
    col_vals: List[Any] = []
    n_obs = 0
    records = sorted(
        records,
        key=lambda r: (
            r["scenario"]["family"],
            r["scenario"]["scheduler"],
            r["scenario"]["rsu"],
            r["scenario"]["n_cores"],
            r["scenario"]["scale"],
            r["scenario"]["seed"],
        ),
    )
    for rec in records:
        if rec["status"] != "ok":
            continue
        obs = rec.get("obs")
        if not obs:
            continue
        n_obs += 1
        c = _axis_value(rec, cols)
        if c not in col_vals:
            col_vals.append(c)
        flat: Dict[str, float] = {}
        for name, value in obs.get("counters", {}).items():
            flat[f"counter:{name}"] = float(value)
        for name, timer in obs.get("timers", {}).items():
            flat[f"timer:{name}_s"] = float(timer["total_s"])
        for name, span in obs.get("spans", {}).items():
            flat[f"span:{name}_s"] = float(span["total_s"])
        for name, gauge in obs.get("gauges", {}).items():
            flat[f"gauge:{name}:max"] = float(gauge["max"])
        for row_name, value in flat.items():
            if row_name not in row_names:
                row_names.append(row_name)
            cells.setdefault((row_name, c), []).append(value)
    if n_obs == 0:
        raise ValueError(
            "no ok-records with 'obs' blocks in this store; "
            "run the campaign with --obs to collect metrics"
        )
    headers = ["metric"] + [str(c) for c in col_vals]
    body: List[List[str]] = []
    for row_name in sorted(row_names):
        line = [row_name]
        for c in col_vals:
            values = cells.get((row_name, c))
            if values is None:
                line.append("-")
            elif row_name.startswith("gauge:"):
                line.append(f"{max(values):.6g}")
            else:
                line.append(f"{sum(values):.6g}")
        body.append(line)
    return headers, body


def render_table(
    headers: Sequence[str], body: Sequence[Sequence[str]], fmt: str = "md"
) -> str:
    """Render a pivot table as markdown (``md``) or ``csv``."""
    out = io.StringIO()
    if fmt == "csv":
        out.write(",".join(str(h) for h in headers) + "\n")
        for row in body:
            out.write(",".join(str(c) for c in row) + "\n")
        return out.getvalue()
    if fmt != "md":
        raise ValueError(f"unknown format {fmt!r}; choose 'md' or 'csv'")
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in body))
        if body
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    out.write(
        "| " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)) + " |\n"
    )
    out.write("|" + "|".join("-" * (w + 2) for w in widths) + "|\n")
    for row in body:
        out.write(
            "| " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)) + " |\n"
        )
    return out.getvalue()


def aggregate_stats(records: Sequence[dict], name: str = "campaign") -> StatSet:
    """Sum every ok-record's counter dump into one StatSet."""
    total = StatSet(name)
    for rec in records:
        if rec["status"] == "ok" and rec.get("stats"):
            total.add_many(rec["stats"])
    return total


# ----------------------------------------------------------------------
# store-vs-store regression gating
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One flagged metric change between baseline and candidate."""

    scenario_id: str
    describe: str
    metric: str
    baseline: float
    candidate: float

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.candidate != 0 else 0.0
        return self.candidate / self.baseline - 1.0


@dataclass
class CompareResult:
    """Outcome of diffing two stores."""

    regressions: List[Regression]
    improvements: List[Regression]
    mismatches: List[str]  # structural problems, human-readable
    n_compared: int

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.mismatches

    def describe(self) -> str:
        lines = [
            f"compared {self.n_compared} scenarios: "
            f"{len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, "
            f"{len(self.mismatches)} mismatches"
        ]
        for reg in self.regressions:
            lines.append(
                f"  REGRESSION {reg.scenario_id} [{reg.describe}] "
                f"{reg.metric}: {reg.baseline:.6g} -> {reg.candidate:.6g} "
                f"({reg.rel_change:+.2%})"
            )
        for imp in self.improvements:
            lines.append(
                f"  improved   {imp.scenario_id} [{imp.describe}] "
                f"{imp.metric}: {imp.baseline:.6g} -> {imp.candidate:.6g} "
                f"({imp.rel_change:+.2%})"
            )
        for msg in self.mismatches:
            lines.append(f"  MISMATCH   {msg}")
        return "\n".join(lines)


def _describe_axes(record: dict) -> str:
    s = record["scenario"]
    label = (
        f"{s['family']} {s['scheduler']} rsu={s['rsu']} "
        f"c{s['n_cores']} x{s['scale']} s{s['seed']}"
    )
    params = s.get("params")
    if params is not None and len(params) > 0:
        # Param axes (fault plans, workload knobs) are what distinguish
        # e.g. fig4 rows sharing every positional axis — a regression
        # label without them would point at a dozen scenarios at once.
        label += " " + " ".join(
            f"{k}={v}" for k, v in sorted(params.items())
        )
    return label


def compare_stores(
    baseline: ResultStore,
    candidate: ResultStore,
    tolerance: float = 0.01,
    metrics: Sequence[str] = DEFAULT_METRICS,
) -> CompareResult:
    """Flag scenarios where ``candidate`` is worse than ``baseline``.

    A metric regresses when its relative increase exceeds ``tolerance``
    (all gated metrics are bigger-is-worse).  Task-count changes, status
    flips (ok → error) and scenarios missing from the candidate are
    structural mismatches.  Scenarios only present in the candidate are
    ignored — growing a campaign is not a regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    regressions: List[Regression] = []
    improvements: List[Regression] = []
    mismatches: List[str] = []
    n_compared = 0
    for rec_id in sorted(baseline.ids()):
        base = baseline.get(rec_id)
        cand = candidate.get(rec_id)
        label = _describe_axes(base)
        if cand is None:
            mismatches.append(f"{rec_id} [{label}] missing from candidate store")
            continue
        n_compared += 1
        if base["status"] != cand["status"]:
            mismatches.append(
                f"{rec_id} [{label}] status {base['status']} -> {cand['status']}"
            )
            continue
        if base["status"] != "ok":
            continue  # both errored identically: nothing to gate
        if base["metrics"]["n_tasks"] != cand["metrics"]["n_tasks"]:
            mismatches.append(
                f"{rec_id} [{label}] n_tasks "
                f"{base['metrics']['n_tasks']} -> {cand['metrics']['n_tasks']}"
            )
            continue
        for metric in metrics:
            b = base["metrics"].get(metric)
            c = cand["metrics"].get(metric)
            if b is None or c is None:
                continue
            entry = Regression(rec_id, label, metric, float(b), float(c))
            if entry.rel_change > tolerance:
                regressions.append(entry)
            elif entry.rel_change < -tolerance:
                improvements.append(entry)
    return CompareResult(regressions, improvements, mismatches, n_compared)
