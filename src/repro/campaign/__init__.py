"""repro.campaign — parallel, sharded experiment campaigns.

The paper's claims are comparative: a scheduler policy, an RSU boosting
mode or a memory configuration only means something *against* the
alternatives, swept across workloads and machine sizes.  This package
turns those sweeps from hand-rolled serial loops into declarative,
resumable campaigns:

* :mod:`~repro.campaign.matrix` — ``Scenario``/``Matrix``: the axes of
  one experiment (workload family × scheduler × RSU mode × cores ×
  scale × seed, plus free-form params), content-hashed for caching, with
  filters and deterministic round-robin sharding.
* :mod:`~repro.campaign.presets` — named matrices for each paper figure
  and ROADMAP sweep (see the table below).
* :mod:`~repro.campaign.runner` — executes a matrix serially (the
  debugging path) or on a ``multiprocessing`` pool.  Each scenario is
  seeded from its own axes, so records are identical for any worker
  count; a failing scenario yields an ``error`` record instead of
  killing the campaign.
* :mod:`~repro.campaign.store` — append-only JSONL result store.
  Rerunning a campaign against an existing store skips scenarios whose
  ok-records already exist (resume) and retries errored ones; a
  truncated trailing line from a killed run is ignored and rewritten.
* :mod:`~repro.campaign.report` — pivot-table summaries (markdown/CSV)
  and ``compare``: diff two stores and flag metric regressions beyond a
  tolerance — the gate for perf PRs and CI.

Command line
------------
::

    python -m repro.campaign list-presets
    python -m repro.campaign run --preset smoke --workers 4 --store out.jsonl
    python -m repro.campaign run --preset scheduler_matrix --shard 0/4 ...
    python -m repro.campaign report --store out.jsonl --metric makespan \\
        --rows family --cols scheduler --format md
    python -m repro.campaign compare baseline.jsonl candidate.jsonl \\
        --tolerance 0.02

Presets
-------
=================  ==========================================================
``smoke``          7 schedulers × 3 DAG families, 8 cores (CI gate)
``scheduler_matrix`` 7 schedulers × 5 DAG families × scales (1, 2), 16 cores
``rsu_comparison`` RSU off/oracle/heuristic × 5 DAG families, CATS
``fig2_rsu``       Sec. 3.1 static vs criticality-aware DVFS, 32 cores
``fig2_overhead``  software vs RSU DVFS stall sweep, 4..64 cores
``fig5_parsec``    PARSEC pthreads vs OmpSs speedups, 1..16 threads
``throughput``     tasks/s per DAG family vs scale (1, 2, 4)
=================  ==========================================================

JSONL record schema (v1)
------------------------
One record per scenario; everything outside the ``timing`` block is a
deterministic function of the scenario axes and the code revision::

    {"id": "<sha256[:12] of the axes>",
     "scenario": {"family": ..., "scheduler": ..., "rsu": ...,
                  "n_cores": ..., "scale": ..., "seed": ..., "params": {}},
     "status": "ok" | "error",
     "metrics": {"makespan": s, "energy_j": J, "edp": J*s, "n_tasks": n},
     "stats":   {"<StatSet counter>": value, ...},
     "error":   null | {"type": ..., "message": ...},
     "meta":    {"schema": 1, "campaign": ..., "git_rev": ...},
     "timing":  {"wall_s": ..., "build_s": ..., "sim_s": ...,
                 "tasks_per_sec": ...,  # n_tasks / sim_s: the tracked
                                        # kernel-throughput number
                 "host": ..., "pid": ..., "unix_ts": ...}}
"""

from .matrix import Matrix, Scenario
from .presets import PRESETS, build_preset, preset_names
from .report import CompareResult, compare_stores, render_table, summarize
from .runner import RunSummary, run_campaign, run_scenario
from .store import MergeResult, ResultStore, canonical_line, merge_stores

__all__ = [
    "Matrix",
    "Scenario",
    "PRESETS",
    "build_preset",
    "preset_names",
    "CompareResult",
    "compare_stores",
    "render_table",
    "summarize",
    "RunSummary",
    "run_campaign",
    "run_scenario",
    "MergeResult",
    "ResultStore",
    "canonical_line",
    "merge_stores",
]
