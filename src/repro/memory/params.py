"""Latency and energy constants for the memory hierarchy.

The absolute values follow the magnitudes used in the methodology of the
ISCA'15 hybrid-memory paper this figure summarises (CACTI-class tables for
32 nm SRAM arrays, standard DDR access energies).  What matters for the
reproduction is the *ratios*:

* an SPM access is cheaper than a cache hit (no tag array, no TLB-coherent
  lookup, no coherence state) — here 8 pJ vs 20 pJ, 1 vs 2 cycles;
* a DRAM line access dwarfs everything on-chip (~20 nJ per 64 B line);
* bulk DMA transfers amortise control overhead that per-line cache refills
  pay repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryParams"]


@dataclass(frozen=True)
class MemoryParams:
    """All tunable constants of the memory system, in one place."""

    # geometry -----------------------------------------------------------
    line_bytes: int = 64
    l1_bytes: int = 32 * 1024
    l1_ways: int = 4
    l2_bank_bytes: int = 256 * 1024
    l2_ways: int = 8
    spm_bytes: int = 64 * 1024
    tile_bytes: int = 1024  # SPM tiling software-cache tile
    access_bytes: int = 8  # one double per reference

    # latencies (cycles at the core clock) --------------------------------
    l1_hit_cycles: float = 2.0
    spm_hit_cycles: float = 1.0
    filter_cycles: float = 1.0  # SPM-map filter probe (local)
    directory_cycles: float = 3.0  # SPM directory consult (at home node)
    l2_hit_cycles: float = 12.0
    dram_cycles: float = 120.0
    dma_setup_cycles: float = 40.0  # per-tile DMA programming cost

    # energies (picojoules) -----------------------------------------------
    l1_access_pj: float = 20.0
    spm_access_pj: float = 8.0
    filter_pj: float = 1.0
    directory_pj: float = 4.0
    l2_access_pj: float = 100.0
    dram_line_pj: float = 12000.0
    dma_per_line_pj: float = 4.0  # engine overhead per line moved

    # system --------------------------------------------------------------
    core_freq_ghz: float = 1.0  # memory experiments use a fixed 1 GHz clock
    static_power_w_per_core: float = 1.50  # core+L2-slice+router leakage
    mlp: float = 4.0  # memory-level parallelism: how many misses overlap
    dma_hidden_fraction: float = 0.9  # double buffering hides most DMA time

    @property
    def l1_sets(self) -> int:
        return self.l1_bytes // (self.line_bytes * self.l1_ways)

    @property
    def l2_bank_sets(self) -> int:
        return self.l2_bank_bytes // (self.line_bytes * self.l2_ways)

    @property
    def accesses_per_line(self) -> int:
        return max(1, self.line_bytes // self.access_bytes)

    @property
    def accesses_per_tile(self) -> int:
        return max(1, self.tile_bytes // self.access_bytes)

    @property
    def lines_per_tile(self) -> int:
        return max(1, self.tile_bytes // self.line_bytes)
