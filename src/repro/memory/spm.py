"""Scratchpad memories and the tiling software cache that feeds them.

Section 2: the compiler transforms strided references *"to map them to the
SPMs using tiling software caches"*.  The model captures the steady state of
that transformation:

* a strided stream is consumed tile by tile (``tile_bytes`` at a time);
* each new tile costs one DMA transfer (bulk NoC traffic + DRAM access +
  programming overhead), largely hidden by double buffering;
* every access within the tile is a cheap, coherence-free SPM access;
* output streams are written back with one bulk DMA per tile instead of a
  per-line write-allocate + eviction round trip.

The :class:`Scratchpad` also tracks which global address ranges are
currently resident so the SPM directory/filter can answer alias queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.stats import StatSet
from .params import MemoryParams

__all__ = ["Scratchpad", "DmaTransfer", "TilingStream"]


@dataclass(frozen=True)
class DmaTransfer:
    """One bulk SPM<->memory transfer the hierarchy must account."""

    core: int
    base_addr: int
    nbytes: int
    to_spm: bool  # True: fill (memory -> SPM); False: writeback


class Scratchpad:
    """One core's SPM: a set of resident address ranges, capacity-checked."""

    def __init__(self, core_id: int, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError("SPM size must be positive")
        self.core_id = core_id
        self.size_bytes = size_bytes
        self._ranges: Dict[int, int] = {}  # base -> nbytes
        self.stats = StatSet(f"spm{core_id}")

    @property
    def used_bytes(self) -> int:
        return sum(self._ranges.values())

    def map_range(self, base: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("cannot map an empty range")
        if self.used_bytes + nbytes > self.size_bytes:
            raise MemoryError(
                f"SPM {self.core_id} overflow: {self.used_bytes}+{nbytes} "
                f"> {self.size_bytes}"
            )
        self._ranges[base] = nbytes
        self.stats.add("maps")

    def unmap_range(self, base: int) -> None:
        self._ranges.pop(base, None)
        self.stats.add("unmaps")

    def holds(self, addr: int) -> bool:
        for base, n in self._ranges.items():
            if base <= addr < base + n:
                return True
        return False

    def resident_ranges(self) -> List[Tuple[int, int]]:
        return [(b, n) for b, n in self._ranges.items()]

    def access(self, addr: int, write: bool) -> None:
        self.stats.add("accesses")
        if write:
            self.stats.add("writes")


class TilingStream:
    """The software cache managing one strided stream through one SPM.

    ``advance(addr, write)`` is called for every strided access in program
    order; it returns the :class:`DmaTransfer` objects (fill of the next
    tile, writeback of the previous dirty tile) that the access triggered,
    empty for steady-state in-tile accesses.

    The fill is *lazy*: a tile is only DMA-filled on its first **read**.  A
    tile that is exclusively written (an output stream — the compiler knows
    this from the OUT dependence annotation) skips the fill entirely,
    avoiding the write-allocate round trip a cache would pay.
    """

    def __init__(self, spm: Scratchpad, params: MemoryParams) -> None:
        self.spm = spm
        self.params = params
        self._tile_base: Optional[int] = None
        self._dirty = False
        self._filled = False

    def _tile_of(self, addr: int) -> int:
        t = self.params.tile_bytes
        return addr - (addr % t)

    @property
    def current_tile(self) -> Optional[int]:
        return self._tile_base

    def _close_tile(self) -> List[DmaTransfer]:
        transfers: List[DmaTransfer] = []
        if self._tile_base is not None:
            if self._dirty:
                transfers.append(
                    DmaTransfer(
                        self.spm.core_id,
                        self._tile_base,
                        self.params.tile_bytes,
                        to_spm=False,
                    )
                )
            self.spm.unmap_range(self._tile_base)
            self._tile_base = None
            self._dirty = False
            self._filled = False
        return transfers

    def advance(self, addr: int, write: bool) -> List[DmaTransfer]:
        transfers: List[DmaTransfer] = []
        tile = self._tile_of(addr)
        if tile != self._tile_base:
            transfers.extend(self._close_tile())
            self.spm.map_range(tile, self.params.tile_bytes)
            self._tile_base = tile
        if not write and not self._filled:
            # First read of the tile: bring the data in.
            transfers.append(
                DmaTransfer(
                    self.spm.core_id, tile, self.params.tile_bytes, to_spm=True
                )
            )
            self._filled = True
        self.spm.access(addr, write)
        if write:
            self._dirty = True
        return transfers

    def finish(self) -> List[DmaTransfer]:
        """Flush the final tile (end of the stream)."""
        return self._close_tile()
