"""Directory-based MSI coherence for the cache hierarchy.

Every L2 bank is the *home* of the lines that map to it and keeps a
directory entry per tracked line: the set of cores with a copy and, when a
core holds the line modified, that owner.  The protocol generates exactly
the message pattern whose elimination for strided data is one of Figure 1's
three wins:

* read miss with a remote modified owner → fetch-from-owner + downgrade,
* write (hit on shared, or miss) → invalidations to all sharers + acks,
* dirty L1 eviction → writeback to home.

The directory is *full-map precise*: stale entries are cleaned when L1
evictions are reported (the hierarchy reports them, as silent-drop clean
evictions would otherwise inflate invalidation traffic forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..sim.stats import StatSet

__all__ = ["DirectoryEntry", "CoherenceDirectory", "CoherenceOutcome"]


@dataclass
class DirectoryEntry:
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None  # core holding the line Modified


@dataclass(frozen=True)
class CoherenceOutcome:
    """What the protocol had to do to satisfy one request.

    ``invalidations`` — copies invalidated (control msg + ack each).
    ``owner_forward`` — core that had the line Modified and supplied data.
    """

    invalidations: int
    owner_forward: Optional[int]


class CoherenceDirectory:
    """Full-map MSI directory for the lines of one (logical) home L2."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}
        self.stats = StatSet("coherence")

    def entry(self, line: int) -> DirectoryEntry:
        e = self._entries.get(line)
        if e is None:
            e = DirectoryEntry()
            self._entries[line] = e
        return e

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        return self._entries.get(line)

    # ------------------------------------------------------------------
    def read(self, line: int, core: int) -> CoherenceOutcome:
        """Core ``core`` read-misses on ``line``."""
        e = self.entry(line)
        forward = None
        if e.owner is not None and e.owner != core:
            # Owner must write back / forward; it stays on as a sharer.
            forward = e.owner
            e.sharers.add(e.owner)
            e.owner = None
            self.stats.add("owner_forwards")
        e.sharers.add(core)
        return CoherenceOutcome(0, forward)

    def write(self, line: int, core: int) -> CoherenceOutcome:
        """Core ``core`` writes ``line`` (miss or upgrade)."""
        e = self.entry(line)
        forward = None
        if e.owner is not None and e.owner != core:
            forward = e.owner
            self.stats.add("owner_forwards")
        victims = (e.sharers | ({e.owner} if e.owner is not None else set())) - {core}
        n_inv = len(victims)
        if n_inv:
            self.stats.add("invalidations", n_inv)
        e.sharers = set()
        e.owner = core
        return CoherenceOutcome(n_inv, forward)

    def evicted(self, line: int, core: int, dirty: bool) -> None:
        """An L1 dropped its copy; keep the directory precise."""
        e = self._entries.get(line)
        if e is None:
            return
        e.sharers.discard(core)
        if e.owner == core:
            e.owner = None
            if dirty:
                self.stats.add("dirty_writebacks")
        if not e.sharers and e.owner is None:
            del self._entries[line]

    # ------------------------------------------------------------------
    def copies_of(self, line: int) -> Set[int]:
        e = self._entries.get(line)
        if e is None:
            return set()
        out = set(e.sharers)
        if e.owner is not None:
            out.add(e.owner)
        return out

    @property
    def tracked_lines(self) -> int:
        return len(self._entries)
