"""SPM directory and per-core filters for unknown-alias accesses.

The hardware side of Section 2's co-designed protocol: *"the hybrid memory
hierarchy is extended with a set of directories and filters that track what
part of the data set is mapped and not mapped to the SPMs.  These new
elements are consulted at the execution of memory accesses with unknown
aliases, so all memory accesses can be correctly and efficiently served by
the appropriate memory."*

* The :class:`SpmFilter` is a cheap, core-local structure probed by every
  unknown-alias access.  It conservatively answers "possibly mapped to some
  SPM?"; a negative answer (the common case for truly random data) lets the
  access go straight to the cache hierarchy without any global lookup.
* The :class:`SpmDirectory` is the precise, distributed structure consulted
  only on filter hits; it names the owning core so the access can be routed
  to that SPM.

The filter is modelled as a set of coarse address segments with a
configurable false-positive rate contributed by segment granularity (a real
implementation would be a Bloom-like range filter).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.stats import StatSet

__all__ = ["SpmDirectory", "SpmFilter"]


class SpmDirectory:
    """Precise map from global address ranges to the SPM holding them."""

    def __init__(self) -> None:
        self._ranges: Dict[Tuple[int, int], int] = {}  # (base, nbytes) -> core
        self.stats = StatSet("spm_directory")

    def insert(self, base: int, nbytes: int, core: int) -> None:
        self._ranges[(base, nbytes)] = core
        self.stats.add("inserts")

    def remove(self, base: int, nbytes: int) -> None:
        self._ranges.pop((base, nbytes), None)
        self.stats.add("removes")

    def lookup(self, addr: int) -> Optional[int]:
        """Owning core of ``addr``, or ``None`` if not SPM-mapped."""
        self.stats.add("lookups")
        for (base, nbytes), core in self._ranges.items():
            if base <= addr < base + nbytes:
                return core
        return None

    @property
    def n_ranges(self) -> int:
        return len(self._ranges)


class SpmFilter:
    """Core-local conservative "is this address possibly in an SPM?" probe.

    Tracks mapped ranges at ``segment_bytes`` granularity; coarse segments
    make the filter small and fast at the cost of false positives (an
    address sharing a segment with mapped data probes the directory in
    vain).  False negatives are impossible — required for correctness.
    """

    def __init__(self, segment_bytes: int = 4 * 1024) -> None:
        if segment_bytes <= 0:
            raise ValueError("segment size must be positive")
        self.segment_bytes = segment_bytes
        self._segments: Dict[int, int] = {}  # segment -> refcount
        self.stats = StatSet("spm_filter")

    def _segment(self, addr: int) -> int:
        return addr // self.segment_bytes

    def insert(self, base: int, nbytes: int) -> None:
        for seg in range(self._segment(base), self._segment(base + nbytes - 1) + 1):
            self._segments[seg] = self._segments.get(seg, 0) + 1

    def remove(self, base: int, nbytes: int) -> None:
        for seg in range(self._segment(base), self._segment(base + nbytes - 1) + 1):
            c = self._segments.get(seg, 0) - 1
            if c <= 0:
                self._segments.pop(seg, None)
            else:
                self._segments[seg] = c

    def maybe_mapped(self, addr: int) -> bool:
        self.stats.add("probes")
        hit = self._segment(addr) in self._segments
        if hit:
            self.stats.add("hits")
        return hit

    @property
    def n_segments(self) -> int:
        return len(self._segments)
