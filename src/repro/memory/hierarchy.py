"""The memory hierarchy: cache-only baseline vs. hybrid SPM+cache design.

This module assembles the Figure 1 experiment's two machines:

* ``mode="cache"`` — per-core L1s over a banked shared L2 with a full-map
  MSI directory, DRAM behind corner memory controllers, everything on a 2-D
  mesh.  Every reference, strided or not, goes through the caches and pays
  coherence.
* ``mode="hybrid"`` — the same, plus a per-core scratchpad managed by
  tiling software caches (strided references), per-core SPM filters and a
  distributed SPM directory (unknown-alias references).

Accounting model
----------------
Each access returns its latency in cycles; the workload layer combines the
per-core latency totals with compute cycles and a memory-level-parallelism
divisor to obtain execution time.  Energy is accumulated in joules across
SRAM/DRAM/DMA accesses; NoC traffic in flit-hops via
:class:`~repro.sim.noc.MeshNoC`, which is the "NoC traffic" bar of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.noc import MeshNoC
from ..sim.stats import StatSet
from .access import RefClass
from .cache import SetAssocCache
from .coherence import CoherenceDirectory
from .directory import SpmDirectory, SpmFilter
from .params import MemoryParams
from .spm import DmaTransfer, Scratchpad, TilingStream

__all__ = ["MemoryHierarchy", "STREAM_REGION_BITS"]

#: Workload generators allocate each logical array in its own region of
#: ``2**STREAM_REGION_BITS`` bytes; the region id identifies the stream a
#: strided access belongs to (stands in for the compiler's array identity).
STREAM_REGION_BITS = 30

_CTRL_BYTES = 8  # a request / ack / invalidation message
_DATA_EXTRA = 8  # header on a data message


class MemoryHierarchy:
    """A 64-byte-line memory system for ``n_cores`` cores.

    Parameters
    ----------
    n_cores:
        Number of cores (one L1 — and in hybrid mode one SPM — each).
    mode:
        ``"cache"`` or ``"hybrid"``.
    params:
        All latency/energy/geometry constants.
    """

    def __init__(
        self,
        n_cores: int,
        mode: str = "hybrid",
        params: Optional[MemoryParams] = None,
        use_filter: bool = True,
    ) -> None:
        """``use_filter=False`` is the ablation of Section 2's filters:
        every unknown-alias access then consults the (remote) SPM
        directory, paying the control message even for data that was never
        SPM-mapped."""
        if mode not in ("cache", "hybrid"):
            raise ValueError(f"unknown mode {mode!r}")
        self.use_filter = use_filter
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self.mode = mode
        self.params = params if params is not None else MemoryParams()
        p = self.params

        self.noc = MeshNoC.square_for(n_cores)
        self.l1 = [
            SetAssocCache(p.l1_bytes, p.line_bytes, p.l1_ways, f"l1.{i}")
            for i in range(n_cores)
        ]
        self.n_banks = n_cores
        self.l2 = [
            SetAssocCache(p.l2_bank_bytes, p.line_bytes, p.l2_ways, f"l2.{b}")
            for b in range(self.n_banks)
        ]
        self.coherence = CoherenceDirectory()
        # Memory controllers at the mesh corners.
        w, h = self.noc.width, self.noc.height
        self.mc_nodes = sorted({0, w - 1, (h - 1) * w, h * w - 1})

        if mode == "hybrid":
            self.spm = [Scratchpad(i, p.spm_bytes) for i in range(n_cores)]
            self.spm_directory = SpmDirectory()
            self.filters = [SpmFilter() for _ in range(n_cores)]
            self._streams: Dict[Tuple[int, int], TilingStream] = {}
            # core -> list of (base, nbytes, dirty) pinned SPM ranges
            self._pinned: Dict[int, List[list]] = {i: [] for i in range(n_cores)}

        self.stats = StatSet(f"hierarchy.{mode}")
        self.energy_j = 0.0
        self.mem_cycles = [0.0] * n_cores

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def home_bank(self, line: int) -> int:
        return (line // self.params.line_bytes) % self.n_banks

    def _nearest_mc(self, node: int) -> int:
        return min(self.mc_nodes, key=lambda m: (self.noc.hops(node, m), m))

    def _noc_cycles(self, latency_s: float) -> float:
        return latency_s * self.params.core_freq_ghz * 1e9

    # ------------------------------------------------------------------
    # energy helpers
    # ------------------------------------------------------------------
    def _spend(self, pj: float, kind: str = "other") -> None:
        self.energy_j += pj * 1e-12
        self.stats.add(f"energy_pj.{kind}", pj)

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, write: bool, cls: int) -> float:
        """Process one reference; returns its latency in cycles."""
        self.stats.add("accesses")
        cls = RefClass(cls)
        self.stats.add(f"accesses.{cls.name.lower()}")
        if self.mode == "hybrid":
            if cls is RefClass.STRIDED:
                lat = self._spm_access(core, addr, write)
            elif cls is RefClass.RANDOM_UNKNOWN:
                lat = self._unknown_access(core, addr, write)
            else:
                lat = self._cache_access(core, addr, write)
        else:
            lat = self._cache_access(core, addr, write)
        self.mem_cycles[core] += lat
        return lat

    def run_batch(self, batch) -> None:
        """Process every record of an :class:`~repro.memory.access.AccessBatch`."""
        rec = batch.records
        cores = rec["core"]
        addrs = rec["addr"]
        writes = rec["write"]
        classes = rec["cls"]
        for i in range(len(rec)):
            self.access(int(cores[i]), int(addrs[i]), bool(writes[i]), int(classes[i]))

    def finish(self) -> None:
        """End of workload: flush SPM streams, pinned ranges, dirty L1s."""
        if self.mode == "hybrid":
            for stream in self._streams.values():
                for t in stream.finish():
                    self._account_dma(t)
            for core, entries in self._pinned.items():
                for base, nbytes, dirty in entries:
                    if dirty:
                        self._account_dma(
                            DmaTransfer(core, base, nbytes, to_spm=False)
                        )
        for core, l1 in enumerate(self.l1):
            for line in l1.flush_dirty():
                self._writeback_l1_line(core, line)

    # ------------------------------------------------------------------
    # SPM (strided) path
    # ------------------------------------------------------------------
    def pin_region(self, core: int, base: int, nbytes: int) -> None:
        """Permanently map [base, base+nbytes) into ``core``'s SPM.

        Models the tiling software cache's treatment of arrays small enough
        to live in the scratchpad for the whole phase (e.g. a core's
        partition of CG's x vector): one bulk fill up front, coherence-free
        accesses throughout, one writeback at :meth:`finish` if dirtied.
        """
        if self.mode != "hybrid":
            return
        self.spm[core].map_range(base, nbytes)
        self.spm_directory.insert(base, nbytes, core)
        for f in self.filters:
            f.insert(base, nbytes)
        self._account_dma(DmaTransfer(core, base, nbytes, to_spm=True))
        self._pinned[core].append([base, nbytes, False])
        self.stats.add("pinned_regions")

    def _pinned_entry(self, core: int, addr: int):
        for entry in self._pinned[core]:
            if entry[0] <= addr < entry[0] + entry[1]:
                return entry
        return None

    def _stream_key(self, core: int, addr: int) -> Tuple[int, int]:
        return (core, addr >> STREAM_REGION_BITS)

    def _spm_access(self, core: int, addr: int, write: bool) -> float:
        p = self.params
        pinned = self._pinned_entry(core, addr)
        if pinned is not None:
            if write:
                pinned[2] = True
            self.spm[core].access(addr, write)
            self._spend(p.spm_access_pj, "spm")
            self.stats.add("spm_hits")
            self.stats.add("spm_pinned_hits")
            return p.spm_hit_cycles
        key = self._stream_key(core, addr)
        stream = self._streams.get(key)
        if stream is None:
            stream = TilingStream(self.spm[core], p)
            self._streams[key] = stream
        old_tile = stream.current_tile
        transfers = stream.advance(addr, write)
        visible = 0.0
        for t in transfers:
            visible += self._account_dma(t)
        if stream.current_tile != old_tile:
            self._update_spm_mapping(core, old_tile, stream.current_tile)
        self._spend(p.spm_access_pj, "spm")
        self.stats.add("spm_hits")
        return p.spm_hit_cycles + visible

    def _update_spm_mapping(
        self, core: int, old_tile: Optional[int], new_tile: Optional[int]
    ) -> None:
        """Keep directory precise across a tile swap (one control message)."""
        p = self.params
        if old_tile is not None:
            self.spm_directory.remove(old_tile, p.tile_bytes)
        if new_tile is not None:
            self.spm_directory.insert(new_tile, p.tile_bytes, core)
            home = self.home_bank(new_tile)
            self.noc.send(core, home, _CTRL_BYTES, kind="spm_dir")

    def _account_dma(self, t: DmaTransfer) -> float:
        """Charge one bulk transfer; returns *visible* latency in cycles."""
        p = self.params
        mc = self._nearest_mc(t.core)
        if t.to_spm:
            lat_s = self.noc.send(mc, t.core, t.nbytes + _DATA_EXTRA, kind="dma")
            self.stats.add("dma_fills")
        else:
            lat_s = self.noc.send(t.core, mc, t.nbytes + _DATA_EXTRA, kind="dma")
            self.stats.add("dma_writebacks")
        lines = max(1, t.nbytes // p.line_bytes)
        self._spend(p.dram_line_pj * lines, "dram_dma")
        self._spend(p.dma_per_line_pj * lines, "dma_engine")
        raw = p.dma_setup_cycles + p.dram_cycles + self._noc_cycles(lat_s)
        if not t.to_spm:
            return 0.0  # writebacks are fire-and-forget
        return raw * (1.0 - p.dma_hidden_fraction)

    # ------------------------------------------------------------------
    # unknown-alias path (hybrid only)
    # ------------------------------------------------------------------
    def _unknown_access(self, core: int, addr: int, write: bool) -> float:
        p = self.params
        cycles = 0.0
        if self.use_filter:
            cycles += p.filter_cycles
            self._spend(p.filter_pj, "filter")
            if not self.filters[core].maybe_mapped(addr):
                self.stats.add("unknown_filtered")
                return cycles + self._cache_access(core, addr, write)
        # Possibly SPM-mapped: consult the distributed directory at the
        # address's home node.
        home = self.home_bank(addr)
        lat_req = self.noc.send(core, home, _CTRL_BYTES, kind="spm_dir")
        self._spend(p.directory_pj, "spm_dir")
        cycles += self._noc_cycles(lat_req) + p.directory_cycles
        owner = self.spm_directory.lookup(addr)
        if owner is None:
            self.stats.add("unknown_dir_miss")
            return cycles + self._cache_access(core, addr, write)
        # Served by the owning SPM (possibly remote).
        self.stats.add("unknown_spm_served")
        self._spend(p.spm_access_pj, "spm")
        cycles += p.spm_hit_cycles
        if owner != core:
            lat_fwd = self.noc.send(home, owner, _CTRL_BYTES, kind="spm_dir")
            lat_data = self.noc.send(
                owner, core, p.access_bytes + _DATA_EXTRA, kind="data"
            )
            cycles += self._noc_cycles(lat_fwd + lat_data)
        if write:
            self.spm[owner].access(addr, True)
            entry = self._pinned_entry(owner, addr)
            if entry is not None:
                entry[2] = True
        return cycles

    # ------------------------------------------------------------------
    # cache path (both modes)
    # ------------------------------------------------------------------
    def register_filter_region(self, base: int, nbytes: int) -> None:
        """Tell every core's filter that [base, base+nbytes) is strided data
        that may at any time be SPM-mapped.  Done once per array by the
        compiler-generated setup code; no runtime traffic."""
        if self.mode != "hybrid":
            return
        for f in self.filters:
            f.insert(base, nbytes)

    def _writeback_l1_line(self, core: int, line: int) -> None:
        """Dirty L1 victim travels to its home L2 bank."""
        p = self.params
        home = self.home_bank(line)
        self.noc.send(core, home, p.line_bytes + _DATA_EXTRA, kind="writeback")
        self._spend(p.l2_access_pj, "l2")
        v_addr, v_dirty = self.l2[home].fill(line, dirty=True)
        self._l2_victim(home, v_addr, v_dirty)
        self.stats.add("l1_writebacks")

    def _l2_victim(self, bank: int, v_addr: Optional[int], v_dirty: bool) -> None:
        if v_addr is not None and v_dirty:
            p = self.params
            mc = self._nearest_mc(bank)
            self.noc.send(bank, mc, p.line_bytes + _DATA_EXTRA, kind="writeback")
            self._spend(p.dram_line_pj, "dram")
            self.stats.add("l2_writebacks")

    def _cache_access(self, core: int, addr: int, write: bool) -> float:
        p = self.params
        l1 = self.l1[core]
        line = l1.line_addr(addr)
        cycles = p.l1_hit_cycles
        self._spend(p.l1_access_pj, "l1")
        was_dirty = l1.is_dirty(addr)
        res = l1.access(addr, write)

        if res.victim_addr is not None:
            self.coherence.evicted(res.victim_addr, core, res.victim_dirty)
            if res.victim_dirty:
                self._writeback_l1_line(core, res.victim_addr)

        if res.hit:
            self.stats.add("l1_hits")
            if write and not was_dirty:
                # Upgrade: the copy was Shared; invalidate other sharers.
                cycles += self._coherent_write_upgrade(core, line)
            return cycles

        # ---- L1 miss ---------------------------------------------------
        self.stats.add("l1_misses")
        home = self.home_bank(line)
        lat_req = self.noc.send(core, home, _CTRL_BYTES, kind="control")
        cycles += self._noc_cycles(lat_req)

        outcome = (
            self.coherence.write(line, core)
            if write
            else self.coherence.read(line, core)
        )
        cycles += self._coherence_cost(core, home, line, outcome)

        self._spend(p.l2_access_pj, "l2")
        cycles += p.l2_hit_cycles
        l2res = self.l2[home].access(line, False)
        self._l2_victim(home, l2res.victim_addr, l2res.victim_dirty)
        if l2res.hit or outcome.owner_forward is not None:
            self.stats.add("l2_hits")
        else:
            self.stats.add("l2_misses")
            mc = self._nearest_mc(home)
            lat_mreq = self.noc.send(home, mc, _CTRL_BYTES, kind="control")
            lat_mdat = self.noc.send(
                mc, home, p.line_bytes + _DATA_EXTRA, kind="data"
            )
            self._spend(p.dram_line_pj, "dram")
            cycles += p.dram_cycles + self._noc_cycles(lat_mreq + lat_mdat)

        lat_data = self.noc.send(home, core, p.line_bytes + _DATA_EXTRA, kind="data")
        cycles += self._noc_cycles(lat_data)
        return cycles

    def _coherent_write_upgrade(self, core: int, line: int) -> float:
        home = self.home_bank(line)
        lat = self.noc.send(core, home, _CTRL_BYTES, kind="coherence")
        outcome = self.coherence.write(line, core)
        self.stats.add("upgrades")
        return self._noc_cycles(lat) + self._coherence_cost(
            core, home, line, outcome
        )

    def _coherence_cost(self, core: int, home: int, line: int, outcome) -> float:
        """Invalidation fan-out and owner forwarding for one request."""
        p = self.params
        cycles = 0.0
        if outcome.owner_forward is not None:
            owner = outcome.owner_forward
            lat_f = self.noc.send(home, owner, _CTRL_BYTES, kind="coherence")
            lat_d = self.noc.send(
                owner, home, p.line_bytes + _DATA_EXTRA, kind="coherence"
            )
            self._spend(p.l1_access_pj, "l1")
            cycles += self._noc_cycles(lat_f + lat_d)
        if outcome.invalidations:
            # Invalidate every remote copy; the slowest ack gates completion.
            worst = 0.0
            copies = [c for c in range(self.n_cores) if c != core]
            victims = []
            for c in copies:
                if self.l1[c].invalidate(line):
                    victims.append(c)
            # The directory already counted precise invalidations; message
            # costs follow the actual victims (fall back to the directory
            # count if state diverged).
            n = max(len(victims), outcome.invalidations)
            for i, c in enumerate(victims or list(range(n))):
                node = c % self.n_cores
                lat_i = self.noc.send(home, node, _CTRL_BYTES, kind="coherence")
                lat_a = self.noc.send(node, home, _CTRL_BYTES, kind="coherence")
                worst = max(worst, self._noc_cycles(lat_i + lat_a))
            cycles += worst
        return cycles

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_mem_cycles(self) -> float:
        return sum(self.mem_cycles)

    def max_core_mem_cycles(self) -> float:
        return max(self.mem_cycles)

    def noc_flit_hops(self) -> float:
        return self.noc.total_flit_hops

    def summary(self) -> Dict[str, float]:
        out = dict(self.stats.as_dict())
        out["energy_j"] = self.energy_j
        out["noc_flit_hops"] = self.noc_flit_hops()
        out["noc_energy_j"] = self.noc.total_energy_j
        return out
