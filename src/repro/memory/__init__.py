"""Hybrid SPM+cache memory hierarchy (the Figure 1 substrate).

The compiler side (:mod:`~repro.memory.compilerpass`) classifies references
as strided / random-no-alias / random-unknown-alias; the hardware side
(:mod:`~repro.memory.hierarchy`) serves each class through the scratchpads
(:mod:`~repro.memory.spm`), the coherent cache hierarchy
(:mod:`~repro.memory.cache`, :mod:`~repro.memory.coherence`) or the SPM
filter+directory protocol (:mod:`~repro.memory.directory`).
"""

from .access import AccessBatch, RefClass, make_batch
from .cache import CacheAccessResult, SetAssocCache
from .coherence import CoherenceDirectory, CoherenceOutcome, DirectoryEntry
from .compilerpass import (
    Affine,
    ArrayDecl,
    ArrayRef,
    ClassifiedRef,
    Indirect,
    LoopNest,
    Opaque,
    class_mix,
    classify,
)
from .directory import SpmDirectory, SpmFilter
from .hierarchy import STREAM_REGION_BITS, MemoryHierarchy
from .params import MemoryParams
from .spm import DmaTransfer, Scratchpad, TilingStream

__all__ = [
    "AccessBatch",
    "RefClass",
    "make_batch",
    "CacheAccessResult",
    "SetAssocCache",
    "CoherenceDirectory",
    "CoherenceOutcome",
    "DirectoryEntry",
    "Affine",
    "ArrayDecl",
    "ArrayRef",
    "ClassifiedRef",
    "Indirect",
    "LoopNest",
    "Opaque",
    "class_mix",
    "classify",
    "SpmDirectory",
    "SpmFilter",
    "STREAM_REGION_BITS",
    "MemoryHierarchy",
    "MemoryParams",
    "DmaTransfer",
    "Scratchpad",
    "TilingStream",
]
