"""Set-associative write-back caches with true LRU replacement.

Tag-only simulation: the model tracks which lines are resident and dirty but
stores no data.  ``access`` returns what happened (hit / miss) plus any
dirty victim that must be written back, so the caller (the hierarchy) can
generate the corresponding refill and writeback traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from ..sim.stats import StatSet

__all__ = ["SetAssocCache", "CacheAccessResult"]


class CacheAccessResult:
    """Outcome of one cache access."""

    __slots__ = ("hit", "victim_addr", "victim_dirty")

    def __init__(self, hit: bool, victim_addr: Optional[int], victim_dirty: bool):
        self.hit = hit
        self.victim_addr = victim_addr
        self.victim_dirty = victim_dirty

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CacheAccessResult(hit={self.hit}, victim={self.victim_addr}, "
            f"dirty={self.victim_dirty})"
        )


class SetAssocCache:
    """A ``size_bytes`` cache of ``ways``-way sets with ``line_bytes`` lines.

    LRU state per set is an :class:`~collections.OrderedDict` mapping line
    address to its dirty bit; the most recently used line sits at the end.
    """

    def __init__(
        self, size_bytes: int, line_bytes: int, ways: int, name: str = "cache"
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        self.name = name
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.stats = StatSet(name)

    # ------------------------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _set_index(self, line: int) -> int:
        return (line // self.line_bytes) % self.n_sets

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return line in self._sets[self._set_index(line)]

    def is_dirty(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return bool(self._sets[self._set_index(line)].get(line, False))

    # ------------------------------------------------------------------
    def access(self, addr: int, write: bool) -> CacheAccessResult:
        """Look up ``addr``; on a miss, allocate (write-allocate policy).

        Returns the result including any dirty victim evicted to make room.
        """
        line = self.line_addr(addr)
        s = self._sets[self._set_index(line)]
        if line in s:
            s.move_to_end(line)
            if write:
                s[line] = True
            self.stats.add("hits")
            if write:
                self.stats.add("write_hits")
            return CacheAccessResult(True, None, False)

        self.stats.add("misses")
        if write:
            self.stats.add("write_misses")
        victim_addr = None
        victim_dirty = False
        if len(s) >= self.ways:
            victim_addr, victim_dirty = s.popitem(last=False)  # LRU
            self.stats.add("evictions")
            if victim_dirty:
                self.stats.add("dirty_evictions")
        s[line] = bool(write)
        return CacheAccessResult(False, victim_addr, victim_dirty)

    def fill(self, addr: int, dirty: bool = False) -> Tuple[Optional[int], bool]:
        """Install a line without counting a demand access (DMA / prefetch).

        Returns ``(victim_addr, victim_dirty)``.
        """
        line = self.line_addr(addr)
        s = self._sets[self._set_index(line)]
        if line in s:
            s.move_to_end(line)
            s[line] = s[line] or dirty
            return None, False
        victim_addr, victim_dirty = None, False
        if len(s) >= self.ways:
            victim_addr, victim_dirty = s.popitem(last=False)
        s[line] = dirty
        return victim_addr, victim_dirty

    def invalidate(self, addr: int) -> bool:
        """Drop a line (coherence invalidation); returns True if present."""
        line = self.line_addr(addr)
        s = self._sets[self._set_index(line)]
        if line in s:
            del s[line]
            self.stats.add("invalidations")
            return True
        return False

    def flush_dirty(self) -> List[int]:
        """Return and clean all dirty lines (end-of-phase writeback)."""
        out = []
        for s in self._sets:
            for line, dirty in s.items():
                if dirty:
                    out.append(line)
                    s[line] = False
        return out

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        h = self.stats.get("hits")
        m = self.stats.get("misses")
        return h / (h + m) if h + m else 0.0

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
