"""The compiler side of the hybrid hierarchy: reference classification.

Section 2: *"simple modifications to the compiler analyses so that it can
classify memory references in three categories: strided memory references,
random memory references that do not alias with strided ones, and random
memory references with unknown aliases."*

We model the analysis at the level it actually operates: symbolic array
references inside a loop nest.  A reference is an :class:`ArrayRef` whose
index expression is affine in the loop induction variable (strided),
indirect through another array (random), or opaque (unknown).  Alias
classification uses declared may-point-to sets: an indirect/opaque
reference that may target a strided array cannot be proven disjoint and is
classified ``RANDOM_UNKNOWN``; one whose targets are all non-SPM arrays is
``RANDOM_NOALIAS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .access import RefClass

__all__ = ["ArrayDecl", "IndexExpr", "Affine", "Indirect", "Opaque", "ArrayRef",
           "LoopNest", "classify", "ClassifiedRef"]


@dataclass(frozen=True)
class ArrayDecl:
    """A program array: name, element count, element size in bytes."""

    name: str
    elements: int
    elem_bytes: int = 8

    @property
    def nbytes(self) -> int:
        return self.elements * self.elem_bytes


class IndexExpr:
    """Base class of index expressions the analysis understands."""


@dataclass(frozen=True)
class Affine(IndexExpr):
    """``stride * i + offset`` — a strided access pattern."""

    stride: int = 1
    offset: int = 0


@dataclass(frozen=True)
class Indirect(IndexExpr):
    """``index_array[i]`` — a data-dependent (random) access pattern."""

    index_array: str


@dataclass(frozen=True)
class Opaque(IndexExpr):
    """An expression the analysis cannot see through (pointer arithmetic,
    function call result...)."""


@dataclass(frozen=True)
class ArrayRef:
    """One reference ``array[index]`` with its read/write direction."""

    array: str
    index: IndexExpr
    is_write: bool = False


@dataclass
class LoopNest:
    """A loop with its references and the alias facts the compiler has.

    ``may_alias`` maps an array name to the set of arrays a pointer-based
    access through it might actually touch (points-to analysis output).
    An empty/missing entry means the compiler has *no* information — the
    conservative assumption is that it may alias anything.
    """

    arrays: Dict[str, ArrayDecl]
    refs: List[ArrayRef]
    may_alias: Dict[str, Optional[Set[str]]] = field(default_factory=dict)

    def declared(self, name: str) -> ArrayDecl:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"reference to undeclared array {name!r}") from None


@dataclass(frozen=True)
class ClassifiedRef:
    """The pass's verdict for one reference."""

    ref: ArrayRef
    cls: RefClass
    #: arrays whose SPM mapping makes this reference dangerous (unknown only)
    hazard_arrays: FrozenSet[str] = frozenset()


def _strided_arrays(nest: LoopNest) -> Set[str]:
    """Arrays accessed through at least one affine reference (SPM candidates)."""
    return {r.array for r in nest.refs if isinstance(r.index, Affine)}


def classify(nest: LoopNest) -> List[ClassifiedRef]:
    """Run the classification over every reference of the loop nest.

    Rules (in order):

    1. affine index                      -> ``STRIDED``
    2. non-affine index whose may-alias set provably avoids every strided
       (SPM-candidate) array             -> ``RANDOM_NOALIAS``
    3. anything else                     -> ``RANDOM_UNKNOWN``
    """
    spm_candidates = _strided_arrays(nest)
    out: List[ClassifiedRef] = []
    for ref in nest.refs:
        nest.declared(ref.array)  # validate
        if isinstance(ref.index, Affine):
            out.append(ClassifiedRef(ref, RefClass.STRIDED))
            continue
        # Which arrays might this reference actually touch?
        targets = nest.may_alias.get(ref.array)
        if targets is None:
            # No alias information: may touch anything, including SPM data.
            hazards = frozenset(spm_candidates)
        else:
            hazards = frozenset(targets & spm_candidates)
        if hazards:
            out.append(ClassifiedRef(ref, RefClass.RANDOM_UNKNOWN, hazards))
        else:
            out.append(ClassifiedRef(ref, RefClass.RANDOM_NOALIAS))
    return out


def class_mix(classified: Iterable[ClassifiedRef]) -> Dict[str, int]:
    """Histogram of verdicts, for reporting and tests."""
    out = {c.name.lower(): 0 for c in RefClass}
    for c in classified:
        out[c.cls.name.lower()] += 1
    return out
