"""``python -m repro.obs`` — observability command line.

Currently one subcommand:

``export-trace``
    Run a workload family under an enabled metrics registry with live
    trace recording, then write a Chrome-trace / Perfetto JSON file
    fusing the task Gantt, runtime phase spans, and counter series.
    Open the output at https://ui.perfetto.dev or ``chrome://tracing``.

Example::

    PYTHONPATH=src python -m repro.obs export-trace \\
        --family cholesky --scale 1 --cores 8 --out trace.json
"""

from __future__ import annotations

import argparse
from typing import List, Optional

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities (metrics + Perfetto export).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export-trace",
        help="run a workload and export a Chrome-trace/Perfetto JSON file",
    )
    export.add_argument("--family", default="cholesky", help="workload family")
    export.add_argument("--scale", type=int, default=1, help="workload scale")
    export.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    export.add_argument("--cores", type=int, default=8, help="simulated cores")
    export.add_argument(
        "--prune-every",
        type=int,
        default=0,
        help="streaming watermark prune period (0 = off)",
    )
    export.add_argument("--out", default="trace.json", help="output JSON path")
    return parser


def _cmd_export_trace(args: argparse.Namespace) -> int:
    # Heavy imports stay inside the command so `import repro.obs.cli`
    # (and --help) never pull in the whole runtime stack.
    from ..apps.dag_workloads import make_workload
    from ..core.runtime import Runtime
    from ..core.schedulers import FifoScheduler
    from ..sim.machine import Machine
    from .metrics import MetricsRegistry
    from .trace_export import export_chrome_trace

    registry = MetricsRegistry()
    tasks = make_workload(args.family, scale=args.scale, seed=args.seed)
    machine = Machine(args.cores, initial_level=2)
    rt = Runtime(
        machine,
        scheduler=FifoScheduler(),
        record_trace=True,
        prune_every=args.prune_every,
        obs=registry,
    )
    rt.submit_all(tasks)
    result = rt.run()
    envelope = export_chrome_trace(
        args.out,
        trace=result.trace,
        registry=registry,
        metadata={
            "family": args.family,
            "scale": args.scale,
            "seed": args.seed,
            "n_cores": args.cores,
        },
    )
    print(
        f"wrote {args.out}: {len(envelope['traceEvents'])} events, "
        f"{len(tasks)} tasks, makespan {result.makespan:.6g}s "
        f"(open at https://ui.perfetto.dev)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "export-trace":
        return _cmd_export_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
