"""Metrics registry with a zero-cost disabled path.

Two objects implement one protocol:

* :class:`Metrics` — the always-available no-op base.  Every method is a
  ``pass`` body and ``enabled`` is a *class* attribute set to ``False``,
  so the disabled hot path is one attribute lookup (``obs.enabled``)
  whose result short-circuits the instrumentation block.  A module-level
  singleton of this class is what :func:`get_active` returns when
  observability is off.
* :class:`MetricsRegistry` — the enabled implementation: plain-dict
  counters, aggregated timers, sampled gauges (optionally with a
  ``(t, value)`` series on the *simulated* clock for trace export), and
  host-time phase spans.

Nothing in here touches the simulation: instrumentation reads simulated
state, never writes it, so results are bit-identical whether a registry
is installed or not (pinned by ``tests/test_obs.py``).  Host-time reads
go through :mod:`repro.obs.timing` — the single RL002-whitelisted
wall-clock module.
"""

from __future__ import annotations

from contextlib import contextmanager
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from .timing import now

__all__ = [
    "OBS_SCHEMA_VERSION",
    "SPAN_TDG_BUILD",
    "SPAN_DISPATCH",
    "SPAN_SIMULATE",
    "SPAN_PRUNE",
    "SPAN_GRAPH_ANALYSIS",
    "Metrics",
    "MetricsRegistry",
    "get_active",
    "enable",
    "disable",
    "enabled",
    "scoped",
]

#: Version stamp embedded in every :meth:`MetricsRegistry.summary` dict
#: (and therefore in campaign records' ``"obs"`` blocks).  Bump when the
#: summary layout changes.
OBS_SCHEMA_VERSION = 1

# Canonical phase-span names.  Spans measure *host* time spent inside a
# phase of the reproduction pipeline; see docs/observability.md.
SPAN_TDG_BUILD = "tdg_build"
SPAN_DISPATCH = "dispatch"
SPAN_SIMULATE = "simulate"
SPAN_PRUNE = "prune"
SPAN_GRAPH_ANALYSIS = "graph_analysis"


class _NullSpan:
    """Context manager that does nothing (disabled-path ``span()``)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one host-time interval on a registry."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = now()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self._registry.record_span(self._name, self._t0, now())
        return False


class Metrics:
    """No-op metrics sink; the protocol base for :class:`MetricsRegistry`.

    Instrumentation sites hold a reference to a :class:`Metrics` and gate
    hot-path work on ``obs.enabled`` (a class attribute — ``False`` here,
    ``True`` on the registry), so a disabled run pays one attribute
    lookup per instrumented block and nothing else.
    """

    __slots__ = ()

    enabled: bool = False

    def counter_add(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named monotonic counter."""

    def timer_add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named aggregated timer."""

    def gauge_sample(self, name: str, value: float, t: Optional[float] = None) -> None:
        """Sample the named gauge; ``t`` (simulated time) keys the series."""

    def record_span(self, name: str, t0: float, t1: float) -> None:
        """Record one completed host-time phase span ``[t0, t1]``."""

    def span(self, name: str) -> "_NullSpan | _Span":
        """Context manager timing a phase span (no-op when disabled)."""
        return _NULL_SPAN

    def summary(self) -> Optional[Dict[str, Any]]:
        """Schema-versioned plain-dict dump, or ``None`` when disabled."""
        return None


class MetricsRegistry(Metrics):
    """Enabled metrics sink: counters, timers, gauges, and phase spans.

    All storage is plain dicts/lists of JSON scalars so :meth:`summary`
    needs no conversion layer and the raw state (``spans``,
    ``gauge_series``) can feed the Chrome-trace exporter directly.
    """

    __slots__ = ("counters", "timers", "gauges", "gauge_series", "spans")

    enabled: bool = True

    def __init__(self) -> None:
        #: name -> running total.
        self.counters: Dict[str, float] = {}
        #: name -> [total_seconds, count].
        self.timers: Dict[str, List[float]] = {}
        #: name -> [n, total, max, last].
        self.gauges: Dict[str, List[float]] = {}
        #: name -> [(t, value), ...] — only for samples taken with ``t``.
        self.gauge_series: Dict[str, List[Tuple[float, float]]] = {}
        #: completed phase spans, in completion order: (name, t0, t1).
        self.spans: List[Tuple[str, float, float]] = []

    def counter_add(self, name: str, value: float = 1.0) -> None:
        counters = self.counters
        if name in counters:
            counters[name] += value
        else:
            counters[name] = value

    def timer_add(self, name: str, seconds: float) -> None:
        slot = self.timers.get(name)
        if slot is None:
            self.timers[name] = [seconds, 1.0]
        else:
            slot[0] += seconds
            slot[1] += 1.0

    def gauge_sample(self, name: str, value: float, t: Optional[float] = None) -> None:
        slot = self.gauges.get(name)
        if slot is None:
            self.gauges[name] = [1.0, value, value, value]
        else:
            slot[0] += 1.0
            slot[1] += value
            if value > slot[2]:
                slot[2] = value
            slot[3] = value
        if t is not None:
            series = self.gauge_series.get(name)
            if series is None:
                self.gauge_series[name] = [(t, value)]
            else:
                series.append((t, value))

    def record_span(self, name: str, t0: float, t1: float) -> None:
        self.spans.append((name, t0, t1))

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def span_totals(self) -> Dict[str, List[float]]:
        """Aggregate raw spans into ``name -> [total_seconds, count]``."""
        totals: Dict[str, List[float]] = {}
        for name, t0, t1 in self.spans:
            slot = totals.get(name)
            if slot is None:
                totals[name] = [t1 - t0, 1.0]
            else:
                slot[0] += t1 - t0
                slot[1] += 1.0
        return totals

    def summary(self) -> Dict[str, Any]:
        span_totals = self.span_totals()
        return {
            "schema": OBS_SCHEMA_VERSION,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "timers": {
                k: {"total_s": self.timers[k][0], "count": int(self.timers[k][1])}
                for k in sorted(self.timers)
            },
            "gauges": {
                k: {
                    "n": int(self.gauges[k][0]),
                    "mean": self.gauges[k][1] / self.gauges[k][0],
                    "max": self.gauges[k][2],
                    "last": self.gauges[k][3],
                }
                for k in sorted(self.gauges)
            },
            "spans": {
                k: {"total_s": span_totals[k][0], "count": int(span_totals[k][1])}
                for k in sorted(span_totals)
            },
        }


_NULL = Metrics()
_ACTIVE: Metrics = _NULL


def get_active() -> Metrics:
    """The process-wide metrics sink (the no-op singleton when disabled).

    ``Runtime`` captures this at construction, so install a registry
    (:func:`enable` / :func:`scoped`) *before* building the runtime, or
    pass one explicitly via ``Runtime(obs=...)``.
    """
    return _ACTIVE


def enabled() -> bool:
    """True when a real registry is installed process-wide."""
    return _ACTIVE.enabled


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active sink."""
    global _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    _ACTIVE = registry
    return registry


def disable() -> None:
    """Restore the no-op sink."""
    global _ACTIVE
    _ACTIVE = _NULL


@contextmanager
def scoped(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Temporarily install a registry, restoring the previous sink on exit."""
    global _ACTIVE
    previous = _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
