"""The one wall-clock module in ``src/repro``.

Every host-time read in the source tree goes through these two helpers.
Lint rule RL002 whitelists exactly this file (``repro/obs/timing.py``)
for ``time.*`` calls, so any other module reaching for
``time.perf_counter`` / ``time.time`` directly trips the linter.  That
keeps the determinism contract auditable: simulated results never depend
on host time, and the places that *observe* host time (phase spans,
campaign ``timing`` blocks, provenance stamps) are all forced through a
single seam that tests can reason about.
"""

from __future__ import annotations

import time

__all__ = ["now", "unix_now"]


def now() -> float:
    """Monotonic high-resolution host timestamp in seconds.

    Suitable for durations (spans, timers, campaign ``timing`` blocks);
    the absolute value is meaningless across processes.
    """
    return time.perf_counter()


def unix_now() -> float:
    """Wall-clock epoch seconds — provenance stamps only, never durations."""
    return time.time()
