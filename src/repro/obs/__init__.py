"""Observability: metrics, phase spans, and Perfetto trace export.

``repro.obs`` is the reproduction's instrumentation layer.  It is
strictly *observational* — simulated results are bit-identical whether
observability is enabled, disabled, or absent (pinned by
``tests/test_obs.py`` and the campaign ``compare --tolerance 0`` gate).

Layout:

* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` (counters,
  timers, sampled gauges, phase spans) and the module-level no-op shim
  returned by :func:`get_active` when disabled, so the off path costs a
  dead attribute lookup per instrumented block.
* :mod:`repro.obs.timing` — the single RL002-whitelisted wall-clock
  module; every host-time read in ``src/`` routes through it.
* :mod:`repro.obs.trace_export` — Chrome-trace / Perfetto JSON export
  fusing :class:`~repro.sim.trace.TraceRecorder` task intervals with
  runtime phase spans and counter series (imported lazily; also exposed
  as the ``python -m repro.obs export-trace`` CLI).

See docs/observability.md for the metric catalogue, span names, and the
determinism contract.
"""

from .metrics import (
    OBS_SCHEMA_VERSION,
    SPAN_DISPATCH,
    SPAN_GRAPH_ANALYSIS,
    SPAN_PRUNE,
    SPAN_SIMULATE,
    SPAN_TDG_BUILD,
    Metrics,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    get_active,
    scoped,
)

__all__ = [
    "OBS_SCHEMA_VERSION",
    "SPAN_DISPATCH",
    "SPAN_GRAPH_ANALYSIS",
    "SPAN_PRUNE",
    "SPAN_SIMULATE",
    "SPAN_TDG_BUILD",
    "Metrics",
    "MetricsRegistry",
    "disable",
    "enable",
    "enabled",
    "get_active",
    "scoped",
]
