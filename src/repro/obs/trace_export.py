"""Chrome-trace / Perfetto JSON export.

Fuses three sources into one `trace-event format`_ file that
``chrome://tracing`` and https://ui.perfetto.dev open directly:

* **Task intervals** from a :class:`~repro.sim.trace.TraceRecorder` —
  one ``ph: "X"`` (complete) event per executed task, on process
  ``pid=1`` ("simulated machine"), one thread per core.  Timestamps are
  *simulated* seconds converted to µs.
* **Phase spans** from a :class:`~repro.obs.metrics.MetricsRegistry` —
  ``tdg_build`` / ``simulate`` / ``prune`` / ``graph_analysis`` host-time
  intervals on process ``pid=2`` ("host runtime"), normalised so the
  first span starts at t=0.  Host and simulated timelines are unrelated
  clocks; keeping them on separate processes makes that explicit.
* **Counter series** from the registry's gauge series (e.g.
  ``event_queue_depth``) — ``ph: "C"`` events on the simulated timeline.

Sub-epsilon overlaps between adjacent task intervals on one core (float
rounding at DVFS boundaries) are fused using the shared
:data:`repro.sim.EPSILON` tolerance — the same constant
``TraceRecorder.validate_no_overlap`` uses; anything larger is a real
scheduling-invariant violation and raises.

.. _trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..sim.trace import EPSILON, TraceRecorder
from .metrics import OBS_SCHEMA_VERSION, MetricsRegistry

__all__ = ["SIM_PID", "HOST_PID", "chrome_trace", "export_chrome_trace"]

#: Process id carrying simulated-time content (task intervals, counters).
SIM_PID = 1
#: Process id carrying host-time content (phase spans).
HOST_PID = 2

_US = 1_000_000.0  # seconds -> trace-event microseconds

Event = Dict[str, Any]


def _metadata_events(core_ids: List[int], have_spans: bool) -> List[Event]:
    events: List[Event] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIM_PID,
            "tid": 0,
            "args": {"name": "simulated machine"},
        }
    ]
    for core_id in core_ids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": core_id,
                "args": {"name": f"core {core_id}"},
            }
        )
    if have_spans:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "host runtime"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "phases"},
            }
        )
    return events


def _task_events(trace: TraceRecorder) -> List[Event]:
    """Per-task complete events, with sub-epsilon overlap fusing per core."""
    events: List[Event] = []
    for core_id, records in sorted(trace.by_core().items()):
        prev_end = None
        for rec in records:
            start = rec.start
            if prev_end is not None and start < prev_end:
                if start < prev_end - EPSILON:
                    raise ValueError(
                        f"core {core_id}: task {rec.task_id} starts at {start} "
                        f"before previous task ended at {prev_end} "
                        f"(beyond EPSILON={EPSILON})"
                    )
                start = prev_end  # fuse float-rounding overlap
            end = rec.end if rec.end > start else start
            prev_end = end
            events.append(
                {
                    "name": rec.task_label,
                    "cat": "task",
                    "ph": "X",
                    "ts": start * _US,
                    "dur": (end - start) * _US,
                    "pid": SIM_PID,
                    "tid": core_id,
                    "args": {
                        "task_id": rec.task_id,
                        "frequency_ghz": rec.frequency_ghz,
                        "critical": rec.critical,
                    },
                }
            )
    return events


def _span_events(registry: MetricsRegistry) -> List[Event]:
    spans = registry.spans
    if not spans:
        return []
    base = min(t0 for _, t0, _ in spans)
    events: List[Event] = []
    for name, t0, t1 in spans:
        events.append(
            {
                "name": name,
                "cat": "phase",
                "ph": "X",
                "ts": (t0 - base) * _US,
                "dur": max(t1 - t0, 0.0) * _US,
                "pid": HOST_PID,
                "tid": 0,
            }
        )
    return events


def _counter_events(registry: MetricsRegistry) -> List[Event]:
    events: List[Event] = []
    for name in sorted(registry.gauge_series):
        for t, value in registry.gauge_series[name]:
            events.append(
                {
                    "name": name,
                    "cat": "gauge",
                    "ph": "C",
                    "ts": t * _US,
                    "pid": SIM_PID,
                    "args": {"value": value},
                }
            )
    return events


def chrome_trace(
    trace: Optional[TraceRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the trace-event JSON envelope (a plain dict, ready to dump).

    Either source may be omitted: a trace-only export shows the simulated
    Gantt, a registry-only export shows host phases and counters.
    ``metadata`` entries are merged into the envelope's ``metadata``
    block (values must be JSON scalars).
    """
    core_ids: List[int] = []
    events: List[Event] = []
    meta: Dict[str, Any] = {
        "schema": OBS_SCHEMA_VERSION,
        "exporter": "repro.obs.trace_export",
        "time_unit_note": "ts/dur are microseconds; pid 1 = simulated "
        "time, pid 2 = host time (unrelated clocks)",
    }
    if trace is not None:
        core_ids = sorted(trace.by_core())
        meta["n_task_records"] = len(trace)
        meta["skipped_released"] = trace.skipped_released
        meta["makespan_s"] = trace.makespan()
    have_spans = registry is not None and bool(registry.spans)
    events.extend(_metadata_events(core_ids, have_spans))
    if trace is not None:
        events.extend(_task_events(trace))
    if registry is not None:
        events.extend(_counter_events(registry))
        events.extend(_span_events(registry))
        meta["counters"] = {k: registry.counters[k] for k in sorted(registry.counters)}
    if metadata is not None:
        meta.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": meta,
    }


def export_chrome_trace(
    path: str,
    trace: Optional[TraceRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the Chrome-trace JSON to ``path`` and return the envelope."""
    envelope = chrome_trace(trace=trace, registry=registry, metadata=metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(envelope, fh, indent=None, separators=(",", ":"))
    return envelope
