"""DUE recovery schemes for iterative solvers (the Figure 4 contenders).

=============  =============================================================
Ideal          no fault, no protection — the red reference curve.
Checkpoint     periodic checkpoints of (x, r, p); on a DUE, roll back and
               redo the lost iterations.  Pays overhead even without
               faults, and a large latency bubble when one hits.
LossyRestart   patch the lost block approximately (linear interpolation
               from surviving neighbours) and restart CG from the patched
               iterate.  Cheap, but the rebuilt Krylov space converges
               more slowly afterwards.
FEIR           Forward Exact Interpolation Recovery: exploit r = b - Ax.
               With the residual block intact, the lost block satisfies
               ``A_kk x_k = b_k - r_k - A_k,rest x_rest`` — a small local
               solve recovers x_k *exactly*, so convergence continues as
               if nothing happened, at the cost of a synchronous stall.
AFEIR          asynchronous FEIR: the local solve is scheduled as a task
               off the solver's critical path (Section 4: "scheduling the
               recoveries in tasks that are placed out of the critical
               path"), so the visible stall nearly vanishes.  The overlap
               is measured on the task runtime, not assumed.
=============  =============================================================

Lifecycle contract: schemes are **reusable**.  :func:`~.cg.run_cg` calls
``reset()`` before every run, so one instance may drive a whole campaign
of solves back to back; any per-run state (saved checkpoints, pending
recovery windows) must live behind ``reset()``.  Under a multi-fault
:class:`~.faults.FaultPlan` the hooks are also re-entrant in simulated
time: a second DUE can land while an earlier recovery is still pending —
Checkpoint re-checkpoints after rolling back, and AFEIR serialises
recovery tasks that would overlap on the helper core.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.runtime import Runtime
from ..core.task import Task
from ..sim.machine import Machine
from .cg import CgState, CgTiming
from .faults import DueEvent

__all__ = [
    "RecoveryScheme",
    "IdealScheme",
    "CheckpointScheme",
    "LossyRestartScheme",
    "FeirScheme",
    "AfeirScheme",
    "exact_block_recovery",
    "afeir_visible_overhead",
]


class RecoveryScheme:
    """Protocol: per-iteration hook and DUE hook, both returning seconds."""

    name = "base"

    def reset(self) -> None:
        """Drop all per-run state; called by ``run_cg`` before each run.

        The fresh-state contract that makes one scheme instance safe to
        reuse across many solves (campaign workers hold exactly one).
        Stateless schemes inherit this no-op.
        """

    def on_start(self, state: CgState, timing: CgTiming) -> None:
        """Called once before the first iteration."""

    def on_iteration(self, state: CgState, timing: CgTiming) -> float:
        """Called after every iteration; returns extra simulated seconds."""
        return 0.0

    def on_due(self, state: CgState, due: DueEvent, timing: CgTiming) -> float:
        """Repair ``state`` after the DUE; returns extra simulated seconds."""
        raise NotImplementedError


class IdealScheme(RecoveryScheme):
    """No protection.  Only meaningful without fault injection."""

    name = "Ideal"

    def on_due(self, state: CgState, due: DueEvent, timing: CgTiming) -> float:
        raise RuntimeError("the Ideal run must not receive faults")


class CheckpointScheme(RecoveryScheme):
    """Checkpoint/rollback every ``interval`` iterations.

    Holds the only long-lived mutable state of the scheme family (the
    saved snapshot), so it is where the lifecycle contract bites:
    ``reset()`` drops the snapshot, ``on_due`` without one is a hard
    error (a rollback to a *previous run's* state would silently corrupt
    the solve), and every rollback immediately re-checkpoints the
    restored state so a second DUE inside the redo window rolls back to
    the same point instead of compounding.
    """

    def __init__(self, interval: int = 250) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.name = f"Ckpt {interval}"
        self._saved: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, float, int]
        ] = None

    def reset(self) -> None:
        self._saved = None

    def _save(self, state: CgState) -> None:
        self._saved = (
            state.x.copy(),
            state.r.copy(),
            state.p.copy(),
            state.rz,
            state.iteration,
        )

    def on_start(self, state: CgState, timing: CgTiming) -> None:
        self._save(state)

    def on_iteration(self, state: CgState, timing: CgTiming) -> float:
        if state.iteration % self.interval == 0:
            self._save(state)
            return timing.checkpoint_seconds
        return 0.0

    def on_due(self, state: CgState, due: DueEvent, timing: CgTiming) -> float:
        if self._saved is None:
            raise RuntimeError(
                "CheckpointScheme received a DUE with no checkpoint saved; "
                "the scheme must observe on_start (run it through run_cg, "
                "or call reset() + on_start before injecting)"
            )
        x, r, p, rz, iteration = self._saved
        state.x = x.copy()
        state.r = r.copy()
        state.p = p.copy()
        state.rz = rz
        state.iteration = iteration
        # Re-checkpoint the restored state: the snapshot must never alias
        # the live arrays the redo iterations are about to mutate, and a
        # second DUE during the redo window must roll back here, not to a
        # stale pre-rollback snapshot.  The data is already on stable
        # storage (it *is* the checkpoint), so no extra time is charged.
        self._save(state)
        return timing.rollback_seconds


class LossyRestartScheme(RecoveryScheme):
    """Approximate patch + restart: trades convergence rate for recovery."""

    name = "Lossy Restart"

    def on_due(self, state: CgState, due: DueEvent, timing: CgTiming) -> float:
        blk = due.block()
        lo = state.x[blk.start - 1] if blk.start > 0 else 0.0
        hi = state.x[blk.stop] if blk.stop < len(state.x) else 0.0
        state.x[blk] = np.linspace(lo, hi, due.block_len)
        # Restart: the Krylov space built so far is gone.
        state.refresh_residual()
        return timing.restart_seconds


def exact_block_recovery(state: CgState, due: DueEvent) -> np.ndarray:
    """Solve the local system that determines the lost block exactly.

    From ``r = b - Ax`` with ``r`` intact:
    ``A[k,k] x_k = b_k - r_k - A[k, rest] x_rest``.
    Returns the recovered block (also written into ``state.x``).
    """
    blk = due.block()
    if due.block_len == 0:
        return state.x[blk]
    a = state.a
    rows = a[blk.start : blk.stop, :].tocsc()
    akk = rows[:, blk.start : blk.stop]
    rhs = state.b[blk] - state.r[blk]
    # Subtract the contribution of the surviving entries.
    x_masked = state.x.copy()
    x_masked[blk] = 0.0
    x_masked = np.nan_to_num(x_masked, nan=0.0)
    rhs = rhs - rows @ x_masked
    recovered = spla.spsolve(akk.tocsc(), rhs)
    state.x[blk] = recovered
    return recovered


class FeirScheme(RecoveryScheme):
    """Synchronous exact forward recovery.

    Stateless: the local solve stalls the solver, so by the time the next
    iteration (or the next DUE) runs, recovery has fully completed —
    there is no pending window for a later fault to land inside.
    """

    name = "FEIR"

    def on_due(self, state: CgState, due: DueEvent, timing: CgTiming) -> float:
        exact_block_recovery(state, due)
        # x is exact again; r/p were never damaged, so CG just continues.
        return timing.local_solve_seconds


def afeir_visible_overhead(
    recovery_seconds: float,
    iter_seconds: float,
    n_cores: int = 2,
    machine: Optional[Machine] = None,
) -> float:
    """Measure, on the task runtime, how much of a recovery task's latency
    survives when it is scheduled off the solver's critical path.

    Builds the actual TDG — a chain of iteration tasks (the solver's
    critical path) plus one independent recovery task — runs it on a
    2-core simulated machine, and returns ``makespan - chain_length``.
    This is the Section 4 mechanism measured rather than assumed.
    """
    if recovery_seconds <= 0:
        return 0.0
    machine = machine if machine is not None else Machine(n_cores)
    rt = Runtime(machine)
    n_iters = max(1, math.ceil(recovery_seconds / iter_seconds) + 1)
    for i in range(n_iters):
        rt.submit(
            Task.make(
                f"cg_iter_{i}", cpu_cycles=0.0, mem_seconds=iter_seconds,
                inout=["solver_state"],
            )
        )
    rt.submit(
        Task.make(
            "recovery", cpu_cycles=0.0, mem_seconds=recovery_seconds,
            out=["recovered_block"],
        )
    )
    result = rt.run()
    chain = n_iters * iter_seconds
    return max(0.0, result.makespan - chain)


class AfeirScheme(RecoveryScheme):
    """Asynchronous exact forward recovery (task-overlapped FEIR).

    Tracks the simulated completion time of the in-flight recovery task:
    a DUE landing *inside* that pending window cannot overlap on the
    same helper core, so the residue of the old window is paid as a
    visible stall before the new recovery's overlap window opens.
    """

    def __init__(self, n_cores: int = 2) -> None:
        self.n_cores = n_cores
        self.name = "AFEIR"
        self._pending_until = 0.0

    def reset(self) -> None:
        self._pending_until = 0.0

    def on_due(self, state: CgState, due: DueEvent, timing: CgTiming) -> float:
        exact_block_recovery(state, due)
        # A recovery task still in flight serialises the new one: the
        # unfinished remainder of its window becomes visible stall.
        queue_stall = max(0.0, self._pending_until - state.time_s)
        visible = afeir_visible_overhead(
            timing.local_solve_seconds, timing.iter_seconds, self.n_cores
        )
        launch = state.time_s + queue_stall
        self._pending_until = launch + timing.local_solve_seconds
        # Whatever latency the overlap cannot hide, plus the cost of
        # folding the deferred block updates back into the iterate.
        return queue_stall + timing.afeir_merge_seconds + visible
