"""Synthetic SPD systems standing in for SuiteSparse ``thermal2``.

The paper's Figure 4 runs Conjugate Gradient on ``thermal2``, a 1.2M-dof
FEM steady-state thermal problem.  We cannot ship SuiteSparse data, and CG
recovery behaviour depends only on the system being symmetric positive
definite with FEM-like locality — so we build a scaled-down unstructured
thermal problem: a 2-D five-point diffusion operator with a heterogeneous
(log-normal) conductivity field and Dirichlet boundaries.  Like thermal2
it is SPD, sparse (≈5 nnz/row), ill-conditioned enough that CG takes
hundreds of iterations, and block rows couple only to geometric
neighbours, which is what makes block data loss locally recoverable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["laplacian_2d", "thermal2_proxy", "make_rhs"]


def laplacian_2d(nx: int, ny: int) -> sp.csr_matrix:
    """Standard 5-point Laplacian on an ``nx x ny`` grid (SPD, Dirichlet)."""
    if nx < 2 or ny < 2:
        raise ValueError("grid must be at least 2x2")
    ex = np.ones(nx)
    ey = np.ones(ny)
    tx = sp.diags([-ex[:-1], 2 * ex, -ex[:-1]], [-1, 0, 1])
    ty = sp.diags([-ey[:-1], 2 * ey, -ey[:-1]], [-1, 0, 1])
    a = sp.kronsum(tx, ty, format="csr")
    return a


def thermal2_proxy(
    nx: int = 96, ny: int = 96, seed: int = 0, sigma: float = 0.8
) -> sp.csr_matrix:
    """Heterogeneous-conductivity diffusion operator (thermal2 stand-in).

    Conductivities are log-normal per cell; the operator is assembled as
    ``A = G^T diag(k) G`` (gradient/divergence form) plus a small mass term,
    which guarantees symmetric positive definiteness for any positive field.
    """
    rng = np.random.default_rng(seed)
    n = nx * ny

    def idx(i, j):
        return i * ny + j

    rows, cols, vals = [], [], []
    kfield = np.exp(sigma * rng.standard_normal((nx, ny)))

    def k_between(a, b):
        # harmonic mean of cell conductivities across a face
        return 2.0 * a * b / (a + b)

    diag = np.zeros(n)
    for i in range(nx):
        for j in range(ny):
            here = idx(i, j)
            for di, dj in ((1, 0), (0, 1)):
                ii, jj = i + di, j + dj
                if ii < nx and jj < ny:
                    there = idx(ii, jj)
                    k = k_between(kfield[i, j], kfield[ii, jj])
                    rows.extend((here, there))
                    cols.extend((there, here))
                    vals.extend((-k, -k))
                    diag[here] += k
                    diag[there] += k
    # Dirichlet-like regularisation keeps the operator strictly PD.
    diag += 1e-3
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    a = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    return a


def make_rhs(a: sp.csr_matrix, seed: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """A random smooth solution and its right-hand side ``(x_true, b)``."""
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(a.shape[0])
    return x_true, a @ x_true
