"""Detected and Uncorrected Error (DUE) injection and fault planning.

Section 4 targets DUEs under a *fine-grained* error model: ECC (or a
memory-protection fault) reports that a block of a vector is lost, the
surrounding data is intact, and the runtime is told which block died.
That is the granularity at which the algorithmic recoveries operate —
coarser models (whole-node loss) would not leave the redundancy the
interpolation exploits.

Two layers:

* :class:`DueEvent` / :func:`inject` — one hand-placed error, the unit
  the recovery schemes see (unchanged contract from the single-fault
  Figure 4 experiment).
* :class:`FaultPlan` / :func:`plan_faults` — a seeded *campaign* of
  errors: fault count (or a rate driving a Poisson arrival process) ×
  fault-time distribution × block geometry, all drawn from one
  ``numpy.random.default_rng(seed)`` stream so the same seed always
  yields the same schedule, independent of worker count or shard
  layout (the determinism contract campaign records rest on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "DueEvent",
    "FaultPlan",
    "inject",
    "plan_faults",
    "draw_fault_times",
]

#: Fault-time distributions :func:`plan_faults` understands.
DISTRIBUTIONS = ("uniform", "spaced", "poisson")


def draw_fault_times(
    rng: np.random.Generator,
    *,
    n_faults: Optional[int] = None,
    rate: Optional[float] = None,
    window: Tuple[float, float] = (0.0, 60.0),
    distribution: str = "uniform",
) -> list:
    """Draw a sorted list of fault times from ``rng``.

    The count/rate × uniform/spaced/poisson semantics shared by the
    solver-level planner (:func:`plan_faults`) and the runtime-level
    planner (:func:`repro.resilience.runtime_faults.plan_runtime_faults`):
    exactly one of ``n_faults`` / ``rate`` selects the fault mass, and
    the draw order is fixed (times first), so extracting this helper
    keeps existing seeded plans bit-identical.
    """
    if (n_faults is None) == (rate is None):
        raise ValueError("exactly one of n_faults / rate must be given")
    t0, t1 = float(window[0]), float(window[1])
    if t1 < t0:
        raise ValueError(f"fault window end {t1} precedes start {t0}")
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown fault-time distribution {distribution!r}; "
            f"choose from {DISTRIBUTIONS}"
        )
    if rate is not None:
        if rate <= 0:
            raise ValueError("fault rate must be positive")
        times = []
        t = t0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t > t1:
                break
            times.append(t)
        return times
    if n_faults < 0:
        raise ValueError("n_faults must be non-negative")
    if distribution == "poisson":
        raise ValueError(
            "distribution='poisson' draws its own count — give rate, "
            "not n_faults"
        )
    if distribution == "spaced":
        # Midpoint spacing: n equal slots, one fault centred in each,
        # so plans for different n never share a time by accident.
        step = (t1 - t0) / max(n_faults, 1)
        return [t0 + (i + 0.5) * step for i in range(n_faults)]
    return sorted(float(t) for t in rng.uniform(t0, t1, size=n_faults))


@dataclass(frozen=True)
class DueEvent:
    """One detected-uncorrected error.

    Attributes
    ----------
    time_s:
        Simulated solver time at which the DUE is detected.
    vector:
        Which solver vector loses data (``"x"`` — the iterate — in the
        Figure 4 scenario).
    block_start, block_len:
        The lost index range (e.g. one 2 KiB page of doubles = 256 rows).
    """

    time_s: float
    vector: str = "x"
    block_start: int = 0
    block_len: int = 256

    def __post_init__(self) -> None:
        if self.block_start < 0:
            raise ValueError("DUE block_start must be non-negative")
        if self.block_len < 0:
            raise ValueError("DUE block_len must be non-negative")

    def block(self) -> slice:
        return slice(self.block_start, self.block_start + self.block_len)


def inject(vec: np.ndarray, event: DueEvent) -> np.ndarray:
    """Destroy the event's block in ``vec`` (in place; returns it).

    The lost values are overwritten with NaN — any use of the block
    without recovery poisons the computation, which is exactly what tests
    assert recovery schemes must prevent.  A zero-length block is a
    detected-but-harmless error: legal, and a no-op.
    """
    if event.block_start + event.block_len > len(vec):
        raise ValueError("DUE block outside vector bounds")
    vec[event.block()] = np.nan
    return vec


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of DUEs for one solver run.

    Events are sorted by ``time_s`` (ties keep generation order).  Plans
    compare by value, so two generations from the same seed/spec are
    equal — the property the campaign determinism suite pins.
    """

    events: Tuple[DueEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda event: event.time_s)
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DueEvent]:
        return iter(self.events)

    @classmethod
    def single(cls, event: DueEvent) -> "FaultPlan":
        """The legacy one-hand-placed-fault experiment as a plan."""
        return cls((event,))

    def first_time(self) -> Optional[float]:
        return self.events[0].time_s if len(self.events) else None

    def times(self) -> Tuple[float, ...]:
        return tuple(event.time_s for event in self.events)


def plan_faults(
    n_rows: int,
    *,
    seed: Union[int, Sequence[int]] = 0,
    n_faults: Optional[int] = None,
    rate: Optional[float] = None,
    window: Tuple[float, float] = (0.0, 60.0),
    distribution: str = "uniform",
    block_len: int = 256,
    vector: str = "x",
) -> FaultPlan:
    """Generate a deterministic :class:`FaultPlan` for an ``n_rows`` system.

    Exactly one of ``n_faults`` / ``rate`` selects the fault mass:

    * ``n_faults`` — that many DUEs, times drawn per ``distribution``:
      ``"uniform"`` (iid uniform over ``window``, then sorted) or
      ``"spaced"`` (deterministic even spacing across ``window`` —
      useful when only block geometry should be random).
    * ``rate`` — a Poisson arrival process (exponential inter-arrival
      times at ``rate`` faults per simulated second) truncated to
      ``window``; the *count* itself is then part of the draw and the
      distribution is implicitly ``"poisson"``.

    Block starts are drawn uniformly over the valid range
    ``[0, n_rows - block_len]``, so every generated event is in bounds
    by construction.  All randomness comes from one
    ``default_rng(seed)`` stream: same seed ⇒ identical plan, on any
    host, in any worker process.
    """
    if (n_faults is None) == (rate is None):
        raise ValueError("exactly one of n_faults / rate must be given")
    t0, t1 = float(window[0]), float(window[1])
    if t1 < t0:
        raise ValueError(f"fault window end {t1} precedes start {t0}")
    if not 0 <= block_len <= n_rows:
        raise ValueError(
            f"block_len {block_len} outside [0, n_rows={n_rows}]"
        )
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown fault-time distribution {distribution!r}; "
            f"choose from {DISTRIBUTIONS}"
        )
    rng = np.random.default_rng(seed)
    times = draw_fault_times(
        rng,
        n_faults=n_faults,
        rate=rate,
        window=window,
        distribution=distribution,
    )
    starts = rng.integers(0, n_rows - block_len + 1, size=len(times))
    return FaultPlan(
        tuple(
            DueEvent(
                time_s=float(t),
                vector=vector,
                block_start=int(s),
                block_len=block_len,
            )
            for t, s in zip(times, starts)
        )
    )
