"""Detected and Uncorrected Error (DUE) injection.

Section 4 targets DUEs under a *fine-grained* error model: ECC (or a
memory-protection fault) reports that a block of a vector is lost, the
surrounding data is intact, and the runtime is told which block died.
That is the granularity at which the algorithmic recoveries operate —
coarser models (whole-node loss) would not leave the redundancy the
interpolation exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DueEvent", "inject"]


@dataclass(frozen=True)
class DueEvent:
    """One detected-uncorrected error.

    Attributes
    ----------
    time_s:
        Simulated solver time at which the DUE is detected.
    vector:
        Which solver vector loses data (``"x"`` — the iterate — in the
        Figure 4 scenario).
    block_start, block_len:
        The lost index range (e.g. one 2 KiB page of doubles = 256 rows).
    """

    time_s: float
    vector: str = "x"
    block_start: int = 0
    block_len: int = 256

    def block(self) -> slice:
        return slice(self.block_start, self.block_start + self.block_len)


def inject(vec: np.ndarray, event: DueEvent) -> np.ndarray:
    """Destroy the event's block in ``vec`` (in place; returns it).

    The lost values are overwritten with NaN — any use of the block
    without recovery poisons the computation, which is exactly what tests
    assert recovery schemes must prevent.
    """
    if event.block_start < 0 or event.block_start + event.block_len > len(vec):
        raise ValueError("DUE block outside vector bounds")
    vec[event.block()] = np.nan
    return vec
