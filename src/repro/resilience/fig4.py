"""Figure 4 driver: CG disturbed by a single DUE under every scheme.

Reproduces the experiment of Section 4: *"CG execution example with a
single error occurring at the same time for all implemented mechanisms"*
on the thermal2 stand-in.  Returns the five convergence curves plus the
summary statistics the shape assertions need (convergence time per
scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .cg import CgResult, CgTiming, run_cg
from .faults import DueEvent
from .matrices import make_rhs, thermal2_proxy
from .recovery import (
    AfeirScheme,
    CheckpointScheme,
    FeirScheme,
    IdealScheme,
    LossyRestartScheme,
)

__all__ = ["Fig4Setup", "fig4_curves"]


@dataclass(frozen=True)
class Fig4Setup:
    """Scaled-down version of the paper's scenario.

    The paper injects the DUE around t=30 s into a ~65 s thermal2 solve;
    we keep the same proportions on the proxy system (the checkpoint
    interval is likewise scaled from 'Ckpt 1000' to match the reduced
    iteration count).
    """

    nx: int = 72
    ny: int = 72
    seed: int = 0
    tol: float = 1e-8
    fault_time_s: float = 30.0
    block_start: int = 1024
    block_len: int = 256
    checkpoint_interval: int = 250
    timing: CgTiming = CgTiming()


def fig4_curves(setup: Optional[Fig4Setup] = None) -> Dict[str, CgResult]:
    """Run all five mechanisms; returns scheme name -> CgResult."""
    setup = setup if setup is not None else Fig4Setup()
    a = thermal2_proxy(setup.nx, setup.ny, seed=setup.seed)
    _, b = make_rhs(a, seed=setup.seed + 1)
    due = DueEvent(
        time_s=setup.fault_time_s,
        vector="x",
        block_start=setup.block_start,
        block_len=setup.block_len,
    )
    runs: Dict[str, CgResult] = {}
    runs["Ideal"] = run_cg(
        a, b, IdealScheme(), due=None, tol=setup.tol, timing=setup.timing
    )
    for scheme in (
        CheckpointScheme(setup.checkpoint_interval),
        LossyRestartScheme(),
        FeirScheme(),
        AfeirScheme(),
    ):
        runs[scheme.name] = run_cg(
            a, b, scheme, due=due, tol=setup.tol, timing=setup.timing
        )
    return runs


def convergence_times(runs: Dict[str, CgResult]) -> Dict[str, float]:
    return {name: r.convergence_time() for name, r in runs.items()}


def ascii_plot(runs: Dict[str, CgResult], width: int = 70, height: int = 18) -> str:
    """Rough terminal rendering of Figure 4 (log residual vs time)."""
    t_max = max(r.time_s for r in runs.values())
    curves = {n: r.curve() for n, r in runs.items()}
    lo = min(min(y for _, y in c) for c in curves.values())
    hi = max(max(y for _, y in c) for c in curves.values())
    grid = [[" "] * width for _ in range(height)]
    marks = {}
    for mark, (name, curve) in zip("IKRFA", curves.items()):
        marks[mark] = name
        for t, y in curve:
            cx = min(width - 1, int(t / t_max * (width - 1)))
            cy = min(height - 1, int((hi - y) / max(hi - lo, 1e-9) * (height - 1)))
            grid[cy][cx] = mark
    lines = ["".join(row) for row in grid]
    legend = "  ".join(f"{m}={n}" for m, n in marks.items())
    return "\n".join(lines) + f"\n{legend}\n(x: 0..{t_max:.0f}s, y: log10 residual {hi:.0f}..{lo:.0f})"
