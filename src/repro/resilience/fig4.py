"""Figure 4 driver: CG disturbed by DUEs under every recovery scheme.

Reproduces the experiment of Section 4: *"CG execution example with a
single error occurring at the same time for all implemented mechanisms"*
on the thermal2 stand-in — and generalises it into the campaign's
fault-injection axis: the same five mechanisms under a seeded
multi-fault :class:`~.faults.FaultPlan` (fault count/rate ×
time-distribution × block geometry).

Two entry points:

* :func:`fig4_curves` — all five mechanisms on one setup (the figure).
* :func:`fig4_run` — one named scheme on one setup (the campaign unit:
  ``repro.campaign``'s ``fig4:<scheme>`` family builder calls exactly
  this, so store records and direct figure runs are the same numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from .cg import CgResult, CgTiming, run_cg
from .faults import DueEvent, FaultPlan, plan_faults
from .matrices import make_rhs, thermal2_proxy
from .recovery import (
    AfeirScheme,
    CheckpointScheme,
    FeirScheme,
    IdealScheme,
    LossyRestartScheme,
    RecoveryScheme,
)

__all__ = [
    "FIG4_SCHEMES",
    "Fig4Setup",
    "fig4_curves",
    "fig4_run",
    "convergence_times",
    "ascii_plot",
]

#: Campaign axis names -> display names, in the figure's legend order.
FIG4_SCHEMES = {
    "ideal": "Ideal",
    "checkpoint": "Checkpoint",
    "lossy_restart": "Lossy Restart",
    "feir": "FEIR",
    "afeir": "AFEIR",
}


@dataclass(frozen=True)
class Fig4Setup:
    """Scaled-down version of the paper's scenario.

    The paper injects the DUE around t=30 s into a ~65 s thermal2 solve;
    we keep the same proportions on the proxy system (the checkpoint
    interval is likewise scaled from 'Ckpt 1000' to match the reduced
    iteration count).

    The fault axis: with the defaults (``n_faults=1``,
    ``fault_window_s=0``) the experiment is the paper's — one DUE pinned
    at exactly ``fault_time_s`` wiping ``x[block_start:...+block_len]``.
    Any other combination switches to the seeded generator
    (:func:`~.faults.plan_faults`): ``n_faults`` DUEs (or a Poisson
    process at ``fault_rate`` faults/s) with times drawn over
    ``[fault_time_s, fault_time_s + fault_window_s]`` per
    ``fault_distribution`` and in-bounds block starts drawn per event,
    all deterministic in ``(seed, fault_seed)``.
    """

    nx: int = 72
    ny: int = 72
    seed: int = 0
    tol: float = 1e-8
    fault_time_s: float = 30.0
    block_start: int = 1024
    block_len: int = 256
    checkpoint_interval: int = 250
    timing: CgTiming = CgTiming()
    n_faults: int = 1
    fault_rate: Optional[float] = None
    fault_window_s: float = 0.0
    fault_distribution: str = "uniform"
    fault_seed: int = 0
    afeir_cores: int = 2

    def system(self):
        """The (A, b) pair every scheme of this setup solves."""
        a = thermal2_proxy(self.nx, self.ny, seed=self.seed)
        _, b = make_rhs(a, seed=self.seed + 1)
        return a, b

    def fault_plan(self) -> FaultPlan:
        """The DUE schedule protected runs face (deterministic per setup)."""
        if (
            self.n_faults == 1
            and self.fault_rate is None
            and self.fault_window_s == 0.0
        ):
            # The paper's hand-placed single fault, bit for bit.
            return FaultPlan.single(
                DueEvent(
                    time_s=self.fault_time_s,
                    vector="x",
                    block_start=self.block_start,
                    block_len=self.block_len,
                )
            )
        kwargs: Dict[str, object] = {}
        if self.fault_rate is not None:
            kwargs["rate"] = self.fault_rate
            distribution = "poisson"
        else:
            kwargs["n_faults"] = self.n_faults
            distribution = self.fault_distribution
        return plan_faults(
            self.nx * self.ny,
            seed=[self.seed, self.fault_seed],
            window=(self.fault_time_s, self.fault_time_s + self.fault_window_s),
            distribution=distribution,
            block_len=self.block_len,
            **kwargs,  # type: ignore[arg-type]
        )

    def scheme(self, axis_name: str) -> RecoveryScheme:
        """Instantiate a fresh scheme from its campaign axis name."""
        if axis_name == "ideal":
            return IdealScheme()
        if axis_name == "checkpoint":
            return CheckpointScheme(self.checkpoint_interval)
        if axis_name == "lossy_restart":
            return LossyRestartScheme()
        if axis_name == "feir":
            return FeirScheme()
        if axis_name == "afeir":
            return AfeirScheme(self.afeir_cores)
        raise ValueError(
            f"unknown scheme {axis_name!r}; choose from {sorted(FIG4_SCHEMES)}"
        )


def _run_scheme(
    a: sp.csr_matrix,
    b: np.ndarray,
    setup: Fig4Setup,
    axis_name: str,
    plan: FaultPlan,
) -> CgResult:
    scheme = setup.scheme(axis_name)
    faults = None if axis_name == "ideal" else plan
    return run_cg(
        a, b, scheme, faults=faults, tol=setup.tol, timing=setup.timing
    )


def fig4_run(setup: Fig4Setup, scheme: str) -> CgResult:
    """Run one mechanism of the Figure 4 experiment (the campaign unit).

    ``ideal`` runs fault-free (the reference curve); every other scheme
    faces the setup's full fault plan.  Identical arithmetic to the
    matching entry of :func:`fig4_curves` — the equivalence the
    ``fig4_resilience`` campaign preset's store records are pinned to.
    """
    if scheme not in FIG4_SCHEMES:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from {sorted(FIG4_SCHEMES)}"
        )
    a, b = setup.system()
    return _run_scheme(a, b, setup, scheme, setup.fault_plan())


def fig4_curves(setup: Optional[Fig4Setup] = None) -> Dict[str, CgResult]:
    """Run all five mechanisms; returns scheme display name -> CgResult."""
    setup = setup if setup is not None else Fig4Setup()
    a, b = setup.system()
    plan = setup.fault_plan()
    runs: Dict[str, CgResult] = {}
    for axis_name in FIG4_SCHEMES:
        result = _run_scheme(a, b, setup, axis_name, plan)
        runs[result.scheme] = result
    return runs


def convergence_times(runs: Dict[str, CgResult]) -> Dict[str, float]:
    return {name: r.convergence_time() for name, r in runs.items()}


def ascii_plot(runs: Dict[str, CgResult], width: int = 70, height: int = 18) -> str:
    """Rough terminal rendering of Figure 4 (log residual vs time)."""
    t_max = max(r.time_s for r in runs.values())
    curves = {n: r.curve() for n, r in runs.items()}
    lo = min(min(y for _, y in c) for c in curves.values())
    hi = max(max(y for _, y in c) for c in curves.values())
    grid = [[" "] * width for _ in range(height)]
    marks = {}
    for mark, (name, curve) in zip("IKRFA", curves.items()):
        marks[mark] = name
        for t, y in curve:
            cx = min(width - 1, int(t / t_max * (width - 1)))
            cy = min(height - 1, int((hi - y) / max(hi - lo, 1e-9) * (height - 1)))
            grid[cy][cx] = mark
    lines = ["".join(row) for row in grid]
    legend = "  ".join(f"{m}={n}" for m, n in marks.items())
    return "\n".join(lines) + f"\n{legend}\n(x: 0..{t_max:.0f}s, y: log10 residual {hi:.0f}..{lo:.0f})"
