"""Algorithmic DUE recovery for iterative solvers (the Figure 4 substrate).

Synthetic thermal SPD systems (:mod:`~repro.resilience.matrices`), an
instrumented CG solver (:mod:`~repro.resilience.cg`), DUE injection
(:mod:`~repro.resilience.faults`), the recovery schemes — checkpointing,
lossy restart, FEIR and task-overlapped AFEIR
(:mod:`~repro.resilience.recovery`) — and the Figure 4 experiment driver
(:mod:`~repro.resilience.fig4`).
"""

from .cg import CgRecord, CgResult, CgState, CgTiming, run_cg
from .faults import DueEvent, FaultPlan, inject, plan_faults
from .runtime_faults import (
    RECOVERY_POLICIES,
    ReexecElsewherePolicy,
    ReexecLimitError,
    ReexecPolicy,
    RuntimeFault,
    RuntimeFaultInjector,
    RuntimeFaultPlan,
    RuntimeRecoveryPolicy,
    TaskCheckpointPolicy,
    plan_runtime_faults,
    resolve_recovery,
)
from .fig4 import (
    FIG4_SCHEMES,
    Fig4Setup,
    ascii_plot,
    convergence_times,
    fig4_curves,
    fig4_run,
)
from .matrices import laplacian_2d, make_rhs, thermal2_proxy
from .recovery import (
    AfeirScheme,
    CheckpointScheme,
    FeirScheme,
    IdealScheme,
    LossyRestartScheme,
    RecoveryScheme,
    afeir_visible_overhead,
    exact_block_recovery,
)

__all__ = [
    "CgRecord",
    "CgResult",
    "CgState",
    "CgTiming",
    "run_cg",
    "DueEvent",
    "FaultPlan",
    "inject",
    "plan_faults",
    "RECOVERY_POLICIES",
    "ReexecElsewherePolicy",
    "ReexecLimitError",
    "ReexecPolicy",
    "RuntimeFault",
    "RuntimeFaultInjector",
    "RuntimeFaultPlan",
    "RuntimeRecoveryPolicy",
    "TaskCheckpointPolicy",
    "plan_runtime_faults",
    "resolve_recovery",
    "FIG4_SCHEMES",
    "Fig4Setup",
    "ascii_plot",
    "convergence_times",
    "fig4_curves",
    "fig4_run",
    "laplacian_2d",
    "make_rhs",
    "thermal2_proxy",
    "AfeirScheme",
    "CheckpointScheme",
    "FeirScheme",
    "IdealScheme",
    "LossyRestartScheme",
    "RecoveryScheme",
    "afeir_visible_overhead",
    "exact_block_recovery",
]
