"""Instrumented Conjugate Gradient with pluggable DUE recovery.

The solver is a textbook CG on a sparse SPD system, extended with the two
hooks the Section 4 experiments need:

* a *timing model* translating iterations and recovery actions into
  simulated seconds (Figure 4's x-axis) — per-iteration cost is the
  dominant SpMV plus vector work at a fixed flop rate, so "time" is
  deterministic and machine-independent;
* a *recovery scheme* notified on every iteration (checkpointing) and on
  each DUE (rollback / restart / interpolation).

Faults arrive either as a single hand-placed :class:`~.faults.DueEvent`
(``due=``, the original Figure 4 shape) or as a whole
:class:`~.faults.FaultPlan` (``faults=``, the campaign axis): events fire
in time order at iteration boundaries, and because recovery itself
advances the simulated clock, a later fault can land *inside* a pending
recovery window — schemes must handle back-to-back DUEs.

The residual is tracked recursively as in production CG; after any
recovery action the true residual ``b - Ax`` is recomputed explicitly,
both because real recoveries must and because it keeps the recorded
convergence curves honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from .faults import DueEvent, FaultPlan, inject

__all__ = ["CgTiming", "CgState", "CgRecord", "CgResult", "run_cg"]


@dataclass(frozen=True)
class CgTiming:
    """Simulated-time model of the solver."""

    iter_seconds: float = 0.09  # one CG iteration (SpMV + 5 vector ops)
    checkpoint_seconds: float = 1.0  # serialising x, r, p to stable storage
    rollback_seconds: float = 1.0  # reading a checkpoint back
    restart_seconds: float = 0.35  # recompute r = b - Ax, reset p
    local_solve_seconds: float = 2.5  # FEIR block solve (sync cost)
    afeir_merge_seconds: float = 0.2  # folding deferred updates back in


@dataclass
class CgState:
    """Mutable solver state shared with recovery schemes."""

    a: sp.csr_matrix
    b: np.ndarray
    x: np.ndarray
    r: np.ndarray
    p: np.ndarray
    rz: float
    iteration: int = 0
    time_s: float = 0.0

    def refresh_residual(self) -> None:
        """Recompute the true residual and restart the CG direction."""
        self.r = self.b - self.a @ self.x
        self.p = self.r.copy()
        self.rz = float(self.r @ self.r)


@dataclass(frozen=True)
class CgRecord:
    time_s: float
    iteration: int
    residual: float


@dataclass
class CgResult:
    scheme: str
    records: List[CgRecord]
    converged: bool
    iterations: int
    time_s: float
    x: np.ndarray
    fault_time_s: Optional[float] = None
    #: Times of the DUEs that actually fired (a planned fault past
    #: convergence never fires and is *not* listed here).
    fault_times: Tuple[float, ...] = ()
    #: Number of DUEs that fired.
    n_faults: int = 0
    #: Simulated seconds spent in ``on_due`` recovery actions.
    recovery_s: float = 0.0
    #: Simulated seconds spent in ``on_iteration`` protection actions
    #: (periodic checkpoints); overhead paid even on fault-free runs.
    protection_s: float = 0.0

    def convergence_time(self) -> float:
        """Time of the last record (time to converge when ``converged``)."""
        return self.records[-1].time_s if self.records else 0.0

    def curve(self) -> List[tuple]:
        """(time, log10 residual) points, Figure 4's axes."""
        return [
            (rec.time_s, float(np.log10(max(rec.residual, 1e-300))))
            for rec in self.records
        ]


def _as_events(
    due: Optional[DueEvent],
    faults: Optional[Union[FaultPlan, Sequence[DueEvent]]],
) -> Tuple[DueEvent, ...]:
    """Normalise the two fault inputs into one time-ordered tuple."""
    if due is not None and faults is not None:
        raise ValueError("give either due= (one event) or faults= (a plan)")
    if due is not None:
        return (due,)
    if faults is None:
        return ()
    if isinstance(faults, FaultPlan):
        return faults.events
    return FaultPlan(tuple(faults)).events


def run_cg(
    a: sp.csr_matrix,
    b: np.ndarray,
    scheme,
    due: Optional[DueEvent] = None,
    tol: float = 1e-8,
    max_iterations: int = 20000,
    timing: Optional[CgTiming] = None,
    x0: Optional[np.ndarray] = None,
    faults: Optional[Union[FaultPlan, Sequence[DueEvent]]] = None,
) -> CgResult:
    """Solve ``Ax = b`` with CG under ``scheme``; optionally inject faults.

    ``scheme`` implements the :class:`~repro.resilience.recovery
    .RecoveryScheme` protocol and is *reset* before the run (fresh-state
    contract: one scheme instance may drive many runs back to back).
    Each fault fires at the first iteration boundary past its ``time_s``;
    because ``on_due`` advances the clock, several events can fire at one
    boundary — they are delivered in time order.  A fault whose time
    falls after convergence (or past ``max_iterations``) never fires:
    a DUE in a finished solve is a no-op, not a crash.  ``scheme.on_due``
    must leave the state numerically usable (no NaNs) or the run will
    fail to converge — nothing here silently repairs a bad scheme.
    """
    timing = timing if timing is not None else CgTiming()
    events = _as_events(due, faults)
    n = a.shape[0]
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    r = b - a @ x
    state = CgState(a=a, b=b, x=x, r=r, p=r.copy(), rz=float(r @ r))
    b_norm = float(np.linalg.norm(b)) or 1.0
    records: List[CgRecord] = [
        CgRecord(0.0, 0, float(np.linalg.norm(state.r)) / b_norm)
    ]
    scheme.reset()
    scheme.on_start(state, timing)
    next_fault = 0
    fired: List[float] = []
    recovery_s = 0.0
    protection_s = 0.0
    converged = False

    while state.iteration < max_iterations:
        while next_fault < len(events) and state.time_s >= events[next_fault].time_s:
            event = events[next_fault]
            next_fault += 1
            inject(getattr(state, event.vector), event)
            extra = scheme.on_due(state, event, timing)
            recovery_s += extra
            state.time_s += extra
            fired.append(event.time_s)
            records.append(
                CgRecord(
                    state.time_s,
                    state.iteration,
                    float(np.linalg.norm(state.r)) / b_norm,
                )
            )

        # one CG iteration -------------------------------------------------
        ap = state.a @ state.p
        alpha = state.rz / float(state.p @ ap)
        state.x += alpha * state.p
        state.r -= alpha * ap
        rz_new = float(state.r @ state.r)
        beta = rz_new / state.rz
        state.p = state.r + beta * state.p
        state.rz = rz_new
        state.iteration += 1
        state.time_s += timing.iter_seconds
        extra = scheme.on_iteration(state, timing)
        protection_s += extra
        state.time_s += extra

        res = float(np.sqrt(rz_new)) / b_norm
        records.append(CgRecord(state.time_s, state.iteration, res))
        if not np.isfinite(res):
            break
        if res < tol:
            converged = True
            break

    return CgResult(
        scheme=scheme.name,
        records=records,
        converged=converged,
        iterations=state.iteration,
        time_s=state.time_s,
        x=state.x,
        fault_time_s=events[0].time_s if len(events) else None,
        fault_times=tuple(fired),
        n_faults=len(fired),
        recovery_s=recovery_s,
        protection_s=protection_s,
    )
