"""Instrumented Conjugate Gradient with pluggable DUE recovery.

The solver is a textbook CG on a sparse SPD system, extended with the two
hooks the Section 4 experiments need:

* a *timing model* translating iterations and recovery actions into
  simulated seconds (Figure 4's x-axis) — per-iteration cost is the
  dominant SpMV plus vector work at a fixed flop rate, so "time" is
  deterministic and machine-independent;
* a *recovery scheme* notified on every iteration (checkpointing) and on
  the DUE itself (rollback / restart / interpolation).

The residual is tracked recursively as in production CG; after any
recovery action the true residual ``b - Ax`` is recomputed explicitly,
both because real recoveries must and because it keeps the recorded
convergence curves honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from .faults import DueEvent, inject

__all__ = ["CgTiming", "CgState", "CgRecord", "CgResult", "run_cg"]


@dataclass(frozen=True)
class CgTiming:
    """Simulated-time model of the solver."""

    iter_seconds: float = 0.09  # one CG iteration (SpMV + 5 vector ops)
    checkpoint_seconds: float = 1.0  # serialising x, r, p to stable storage
    rollback_seconds: float = 1.0  # reading a checkpoint back
    restart_seconds: float = 0.35  # recompute r = b - Ax, reset p
    local_solve_seconds: float = 2.5  # FEIR block solve (sync cost)
    afeir_merge_seconds: float = 0.2  # folding deferred updates back in


@dataclass
class CgState:
    """Mutable solver state shared with recovery schemes."""

    a: sp.csr_matrix
    b: np.ndarray
    x: np.ndarray
    r: np.ndarray
    p: np.ndarray
    rz: float
    iteration: int = 0
    time_s: float = 0.0

    def refresh_residual(self) -> None:
        """Recompute the true residual and restart the CG direction."""
        self.r = self.b - self.a @ self.x
        self.p = self.r.copy()
        self.rz = float(self.r @ self.r)


@dataclass(frozen=True)
class CgRecord:
    time_s: float
    iteration: int
    residual: float


@dataclass
class CgResult:
    scheme: str
    records: List[CgRecord]
    converged: bool
    iterations: int
    time_s: float
    x: np.ndarray
    fault_time_s: Optional[float] = None

    def convergence_time(self) -> float:
        """Time of the last record (time to converge when ``converged``)."""
        return self.records[-1].time_s if self.records else 0.0

    def curve(self) -> List[tuple]:
        """(time, log10 residual) points, Figure 4's axes."""
        return [
            (rec.time_s, float(np.log10(max(rec.residual, 1e-300))))
            for rec in self.records
        ]


def run_cg(
    a: sp.csr_matrix,
    b: np.ndarray,
    scheme,
    due: Optional[DueEvent] = None,
    tol: float = 1e-8,
    max_iterations: int = 20000,
    timing: Optional[CgTiming] = None,
    x0: Optional[np.ndarray] = None,
) -> CgResult:
    """Solve ``Ax = b`` with CG under ``scheme``; optionally inject ``due``.

    ``scheme`` implements the :class:`~repro.resilience.recovery
    .RecoveryScheme` protocol.  The DUE fires at the first iteration
    boundary past ``due.time_s``; ``scheme.on_due`` must leave the state
    numerically usable (no NaNs) or the run will fail to converge —
    nothing here silently repairs a bad scheme.
    """
    timing = timing if timing is not None else CgTiming()
    n = a.shape[0]
    x = np.zeros(n) if x0 is None else x0.astype(float).copy()
    r = b - a @ x
    state = CgState(a=a, b=b, x=x, r=r, p=r.copy(), rz=float(r @ r))
    b_norm = float(np.linalg.norm(b)) or 1.0
    records: List[CgRecord] = [
        CgRecord(0.0, 0, float(np.linalg.norm(state.r)) / b_norm)
    ]
    scheme.on_start(state, timing)
    fault_pending = due is not None
    converged = False

    while state.iteration < max_iterations:
        if fault_pending and state.time_s >= due.time_s:
            fault_pending = False
            inject(getattr(state, due.vector), due)
            state.time_s += scheme.on_due(state, due, timing)
            records.append(
                CgRecord(
                    state.time_s,
                    state.iteration,
                    float(np.linalg.norm(state.r)) / b_norm,
                )
            )

        # one CG iteration -------------------------------------------------
        ap = state.a @ state.p
        alpha = state.rz / float(state.p @ ap)
        state.x += alpha * state.p
        state.r -= alpha * ap
        rz_new = float(state.r @ state.r)
        beta = rz_new / state.rz
        state.p = state.r + beta * state.p
        state.rz = rz_new
        state.iteration += 1
        state.time_s += timing.iter_seconds
        state.time_s += scheme.on_iteration(state, timing)

        res = float(np.sqrt(rz_new)) / b_norm
        records.append(CgRecord(state.time_s, state.iteration, res))
        if not np.isfinite(res):
            break
        if res < tol:
            converged = True
            break

    return CgResult(
        scheme=scheme.name,
        records=records,
        converged=converged,
        iterations=state.iteration,
        time_s=state.time_s,
        x=state.x,
        fault_time_s=due.time_s if due else None,
    )
