"""Runtime-level fault injection: kill tasks and cores mid-flight.

PR 8 reproduced the paper's resilience story *inside the CG solver*:
DUEs destroy vector blocks between iterations and algorithmic schemes
repair them.  This module couples the same seeded fault axis to the
**task runtime** itself — at planned simulated times a fault kills the
task running on a victim core (*task-kill*) or fail-stops the whole
core (*core-kill*), and a pluggable :class:`RuntimeRecoveryPolicy`
decides how the runtime recovers.  That is the scenario diversity the
runtime-aware-architecture thesis is about: recovery playing out
against real schedulers, DAG families and streaming mode, not just a
solver loop.

Fault kinds
-----------
* **task-kill** — the task running on the victim core aborts at fault
  time; its elapsed work is discarded (minus whatever the policy
  salvages) and its gid re-enters the ready set for re-dispatch.
* **core-kill** — fail-stop: the in-flight task (if any) is killed as
  above and the core is permanently excluded from dispatch.  Execution
  degrades gracefully onto the surviving cores; if the last live core
  dies with work outstanding the run fails with a clear
  ``AllCoresDeadError``.

Recovery policies
-----------------
* ``reexec`` — re-execute from scratch; each retry pays
  ``penalty`` × the nominal body.
* ``reexec-elsewhere`` — same, but the dispatcher must place the retry
  on a *different* core than the one it was killed on (best-effort: the
  ban is ignored when only one live core remains, and a static
  scheduler that cannot honour it ends in a clear deadlock).
* ``task-checkpoint`` — every task start pays a protection premium
  (``protect_frac`` × body); a killed task restarts owing only
  ``1 - restart_fraction`` of its elapsed work.

Determinism contract
--------------------
A plan is drawn from one ``default_rng(seed)`` stream in a frozen
order — fault times first (shared :func:`~repro.resilience.faults.
draw_fault_times` semantics), then per-fault kind draws, then victim
draws — and victim *selection* maps the stored ``victim_u`` onto the
deterministic candidate list (live/busy cores in ascending id order) at
fire time.  Same seed ⇒ identical firings, makespans and stats on any
host, worker count or shard layout.  An empty plan is never armed, so
zero-fault configurations are bit-identical to fault-free runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..sim.events import Event
from .faults import draw_fault_times

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.runtime import Runtime

__all__ = [
    "FAULT_KINDS",
    "RECOVERY_POLICIES",
    "ReexecElsewherePolicy",
    "ReexecLimitError",
    "ReexecPolicy",
    "RuntimeFault",
    "RuntimeFaultInjector",
    "RuntimeFaultPlan",
    "RuntimeRecoveryPolicy",
    "TaskCheckpointPolicy",
    "plan_runtime_faults",
    "resolve_recovery",
]

#: Fault kinds :func:`plan_runtime_faults` can draw.
FAULT_KINDS = ("task", "core")


class ReexecLimitError(RuntimeError):
    """A task exceeded its recovery policy's re-execution bound."""


@dataclass(frozen=True)
class RuntimeFault:
    """One planned runtime fault.

    Attributes
    ----------
    time_s:
        Simulated time at which the fault strikes.
    kind:
        ``"task"`` (kill the task running on the victim core) or
        ``"core"`` (fail-stop the victim core).
    victim_u:
        Pre-drawn uniform in ``[0, 1)`` mapped onto the candidate-core
        list at fire time.  Storing the *draw* rather than a core id
        keeps the plan machine-shape-independent while victim selection
        stays a pure function of (plan, runtime state).
    """

    time_s: float
    kind: str = "task"
    victim_u: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.time_s < 0:
            raise ValueError("fault time must be non-negative")
        if not 0.0 <= self.victim_u < 1.0:
            raise ValueError("victim_u must lie in [0, 1)")


@dataclass(frozen=True)
class RuntimeFaultPlan:
    """An ordered, immutable schedule of runtime faults for one run.

    Events sort by ``time_s`` (ties keep generation order) and plans
    compare by value, mirroring :class:`~repro.resilience.faults.
    FaultPlan` — two generations from the same seed/spec are equal.
    """

    events: Tuple[RuntimeFault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda ev: ev.time_s))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RuntimeFault]:
        return iter(self.events)

    @classmethod
    def single(cls, event: RuntimeFault) -> "RuntimeFaultPlan":
        """One hand-placed fault as a plan."""
        return cls((event,))

    def times(self) -> Tuple[float, ...]:
        return tuple(ev.time_s for ev in self.events)


def plan_runtime_faults(
    *,
    seed: Union[int, Sequence[int]] = 0,
    n_faults: Optional[int] = None,
    rate: Optional[float] = None,
    window: Tuple[float, float] = (0.0, 60.0),
    distribution: str = "uniform",
    core_kill_p: float = 0.0,
) -> RuntimeFaultPlan:
    """Generate a deterministic :class:`RuntimeFaultPlan`.

    Fault *mass* and *times* reuse the solver-planner semantics
    (:func:`~repro.resilience.faults.draw_fault_times`): exactly one of
    ``n_faults`` / ``rate``, times ``"uniform"`` / ``"spaced"`` over
    ``window`` or a Poisson arrival process at ``rate``.  Each fault is
    then a core-kill with probability ``core_kill_p`` (else a
    task-kill), with a pre-drawn victim uniform.

    Draw order is part of the determinism contract and must never
    change: **times, then kinds, then victims**, all from one
    ``default_rng(seed)`` stream.  The kind/victim draws happen even
    when ``core_kill_p == 0`` so flipping that knob alone never
    reshuffles fault times.
    """
    if not 0.0 <= core_kill_p <= 1.0:
        raise ValueError("core_kill_p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    times = draw_fault_times(
        rng,
        n_faults=n_faults,
        rate=rate,
        window=window,
        distribution=distribution,
    )
    n = len(times)
    kind_u = rng.uniform(0.0, 1.0, size=n)
    victim_u = rng.uniform(0.0, 1.0, size=n)
    return RuntimeFaultPlan(
        tuple(
            RuntimeFault(
                time_s=float(t),
                kind="core" if float(ku) < core_kill_p else "task",
                victim_u=float(vu),
            )
            for t, ku, vu in zip(times, kind_u, victim_u)
        )
    )


# ----------------------------------------------------------------------
# recovery policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeRecoveryPolicy:
    """How the runtime recovers a killed task.

    Parameters
    ----------
    penalty:
        Body-time multiplier every re-execution attempt pays (recovery
        bookkeeping, cache refill, ...).  ``1.0`` = free retry.
    max_retries:
        Bound on kills per task; exceeding it raises
        :class:`ReexecLimitError` — a run that cannot make progress
        fails loudly instead of looping forever.
    """

    penalty: float = 1.0
    max_retries: int = 16

    name: ClassVar[str] = "reexec"
    #: Must the retry land on a different core than the kill site?
    requeue_elsewhere: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.penalty < 1.0:
            raise ValueError("re-execution penalty must be >= 1.0")
        if self.max_retries < 1:
            raise ValueError("max_retries must be positive")

    def protect_cost(self, body_s: float) -> float:
        """Extra seconds every task start pays for protection."""
        return 0.0

    def saved_after_kill(self, elapsed_s: float, body_s: float) -> float:
        """Seconds of the killed attempt's work salvaged for the retry."""
        return 0.0


@dataclass(frozen=True)
class ReexecPolicy(RuntimeRecoveryPolicy):
    """Re-execute a killed task from scratch (possibly with a penalty)."""

    name: ClassVar[str] = "reexec"


@dataclass(frozen=True)
class ReexecElsewherePolicy(RuntimeRecoveryPolicy):
    """Re-execute from scratch on a *different* core than the kill site.

    Models suspicion of the hardware that just failed.  Best-effort
    under degradation: with a single live core left the ban is ignored
    (progress beats placement), and a static scheduler that cannot
    reroute ends in a clear deadlock rather than silent misplacement.
    """

    name: ClassVar[str] = "reexec-elsewhere"
    requeue_elsewhere: ClassVar[bool] = True


@dataclass(frozen=True)
class TaskCheckpointPolicy(RuntimeRecoveryPolicy):
    """Checkpoint task progress; restart from a fraction of elapsed work.

    Every task start pays ``protect_frac × body`` for checkpointing
    (the always-on premium that makes checkpoint schemes a trade-off,
    exactly as in Figure 4's solver-level counterpart); a killed task
    restarts owing ``elapsed × restart_fraction`` seconds less.
    """

    name: ClassVar[str] = "task-checkpoint"
    protect_frac: float = 0.02
    restart_fraction: float = 0.75

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.protect_frac:
            raise ValueError("protect_frac must be non-negative")
        if not 0.0 <= self.restart_fraction <= 1.0:
            raise ValueError("restart_fraction must lie in [0, 1]")

    def protect_cost(self, body_s: float) -> float:
        return self.protect_frac * body_s

    def saved_after_kill(self, elapsed_s: float, body_s: float) -> float:
        return self.restart_fraction * elapsed_s


#: Registry of recovery-policy constructors by campaign-facing name.
RECOVERY_POLICIES: Dict[str, Callable[..., RuntimeRecoveryPolicy]] = {
    "reexec": ReexecPolicy,
    "reexec-elsewhere": ReexecElsewherePolicy,
    "task-checkpoint": TaskCheckpointPolicy,
}


def resolve_recovery(
    spec: Union[str, RuntimeRecoveryPolicy, None], **kwargs: Any
) -> RuntimeRecoveryPolicy:
    """Resolve a policy spec: an instance passes through, a name is
    constructed from :data:`RECOVERY_POLICIES` (``kwargs`` forwarded),
    ``None`` defaults to plain ``reexec``."""
    if spec is None:
        return ReexecPolicy(**kwargs)
    if isinstance(spec, RuntimeRecoveryPolicy):
        if kwargs:
            raise ValueError("cannot pass kwargs with a policy instance")
        return spec
    try:
        factory = RECOVERY_POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {spec!r}; "
            f"choose from {sorted(RECOVERY_POLICIES)}"
        ) from None
    return factory(**kwargs)


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class RuntimeFaultInjector:
    """Arms a :class:`RuntimeFaultPlan` against one ``Runtime``.

    The runtime constructs one of these when given a non-empty plan and
    calls the hooks below from its start/complete/kill paths; the
    injector keeps all recovery-policy state (retry counts, salvaged
    work, placement bans) and schedules exactly one pending fault event
    at a time, so disarming at taskwait exit is a single cancel.
    """

    def __init__(
        self,
        runtime: "Runtime",
        plan: RuntimeFaultPlan,
        policy: RuntimeRecoveryPolicy,
    ) -> None:
        self.runtime = runtime
        self.plan = plan
        self.policy = policy
        #: gid → completion event of the attempt currently running
        #: (cancelled on kill so the stale completion never fires).
        self.inflight: Dict[int, Event] = {}
        #: gid → core id the retry must avoid (reexec-elsewhere).
        self.banned: Dict[int, int] = {}
        #: gid → number of times this task has been killed.
        self.kills: Dict[int, int] = {}
        #: gid → seconds of salvaged work credited to the next attempt.
        self.saved: Dict[int, float] = {}
        self._idx = 0
        self._event: Optional[Event] = None

    # -- arming ---------------------------------------------------------
    def arm(self) -> None:
        """Schedule the next not-yet-past fault (one event at a time)."""
        self._schedule_next()

    def disarm(self) -> None:
        """Cancel the pending fault event (taskwait drained).

        Faults scheduled beyond the makespan must not fire during the
        trailing event drain — they would advance the clock past the
        real finish time.  Un-fired plan entries stay pending: a later
        taskwait window (streaming submission) re-arms from where the
        plan left off.
        """
        if self._event is not None and self._event.pending:
            self._event.cancel()
        self._event = None

    def _schedule_next(self) -> None:
        rt = self.runtime
        sim = rt.machine.sim
        events = self.plan.events
        idx = self._idx
        while idx < len(events) and events[idx].time_s < sim.now:
            # A fault planned before the current window opened can never
            # fire; count it so sweeps can see clipped plans.
            rt.stats.add("runtime_faults_skipped")
            idx += 1
        self._idx = idx
        if idx < len(events):
            self._event = sim.schedule_at(events[idx].time_s, self._fire)
        else:
            self._event = None

    def _fire(self) -> None:
        fault = self.plan.events[self._idx]
        self._idx += 1
        self._event = None
        rt = self.runtime
        rt.stats.add("runtime_faults_fired")
        cores = rt.machine.cores
        if fault.kind == "core":
            candidates = [c.core_id for c in cores if c.alive]
        else:
            candidates = [c.core_id for c in cores if c.alive and c.busy]
        if not candidates:
            # Nothing to strike (no live core / no running task): the
            # fault lands in dead air.  Counted, never redrawn — a
            # redraw would make firings depend on schedule shape.
            rt.stats.add("runtime_faults_noop")
        else:
            pos = min(
                int(fault.victim_u * len(candidates)), len(candidates) - 1
            )
            victim = candidates[pos]
            if fault.kind == "core":
                rt._fault_kill_core(victim)
            else:
                rt._fault_kill_task(victim)
        self._schedule_next()

    # -- runtime hooks --------------------------------------------------
    def on_start(self, gid: int, body_s: float) -> float:
        """Adjust a starting task's body time for recovery accounting.

        Applies (in order) the re-execution penalty for retry attempts,
        the salvaged-work credit from a checkpointed kill, and the
        per-start protection premium; consumes the placement ban (the
        dispatcher honoured it by getting here).
        """
        policy = self.policy
        adjusted = body_s
        if self.kills.get(gid):
            adjusted *= policy.penalty
        saved = self.saved.pop(gid, None)
        if saved is not None:
            adjusted = max(adjusted - saved, 0.0)
        protect = policy.protect_cost(body_s)
        if protect:
            adjusted += protect
            self.runtime.stats.add("protection_s", protect)
        if self.banned:
            self.banned.pop(gid, None)
        return adjusted

    def on_kill(self, gid: int, core_id: int, elapsed_s: float, body_s: float) -> float:
        """Record a kill; returns the seconds of work salvaged.

        Raises :class:`ReexecLimitError` when the policy's retry bound
        is exhausted — the deterministic loud-failure alternative to
        re-executing forever.
        """
        policy = self.policy
        n = self.kills.get(gid, 0) + 1
        self.kills[gid] = n
        if n > policy.max_retries:
            raise ReexecLimitError(
                f"task gid={gid} killed {n} times, exceeding the "
                f"{policy.name!r} policy's max_retries={policy.max_retries}"
            )
        saved = min(policy.saved_after_kill(elapsed_s, body_s), elapsed_s)
        if saved > 0.0:
            self.saved[gid] = saved
        if policy.requeue_elsewhere:
            self.banned[gid] = core_id
        return saved

    def ban_blocks(self, gid: int, core_id: int) -> bool:
        """Should the dispatcher refuse to start ``gid`` on ``core_id``?

        True only when the gid is banned from exactly this core *and*
        another live core exists to take it — with one survivor the ban
        is waived so degradation cannot livelock on placement.
        """
        if self.banned.get(gid) != core_id:
            return False
        return self.runtime.machine.n_live_cores > 1
